#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/csv.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace tecfan {
namespace {

// ---------------------------------------------------------------- units
TEST(Units, CelsiusKelvinRoundTrip) {
  EXPECT_DOUBLE_EQ(celsius_to_kelvin(0.0), 273.15);
  EXPECT_DOUBLE_EQ(kelvin_to_celsius(celsius_to_kelvin(85.3)), 85.3);
  EXPECT_DOUBLE_EQ(celsius_to_kelvin(-273.15), 0.0);
}

TEST(Units, GeometryConversions) {
  EXPECT_DOUBLE_EQ(mm_to_m(2.6), 2.6e-3);
  EXPECT_DOUBLE_EQ(mm2_to_m2(9.36), 9.36e-6);
  EXPECT_NEAR(cfm_to_m3s(60.0), 0.0283, 1e-3);
}

// ----------------------------------------------------------------- error
TEST(Error, RequireThrowsPreconditionError) {
  EXPECT_THROW(TECFAN_REQUIRE(false, "nope"), precondition_error);
  EXPECT_NO_THROW(TECFAN_REQUIRE(true, ""));
}

TEST(Error, AssertThrowsInvariantError) {
  EXPECT_THROW(TECFAN_ASSERT(1 == 2, "bug"), invariant_error);
}

TEST(Error, MessagesCarryContext) {
  try {
    TECFAN_REQUIRE(false, "the widget broke");
    FAIL() << "should have thrown";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("the widget broke"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("util_test.cpp"), std::string::npos);
  }
}

// ------------------------------------------------------------------- rng
TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 40000; ++i) s.add(r.normal(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, BelowIsUnbiasedAndInRange) {
  Rng r(17);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[r.below(7)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 450);
}

TEST(Rng, BelowRejectsZero) {
  Rng r(1);
  EXPECT_THROW(r.below(0), precondition_error);
}

TEST(Rng, ForkIsIndependentAndStable) {
  Rng base(99);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1_again = base.fork(1);
  EXPECT_EQ(f1.next_u64(), f1_again.next_u64());
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

TEST(Rng, UniformRangeRespected) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
  EXPECT_THROW(r.uniform(5.0, -2.0), precondition_error);
}

// ----------------------------------------------------------------- stats
TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats s;
  const std::vector<double> xs = {1.0, 2.5, -3.0, 7.25, 0.0, 4.5};
  for (double x : xs) s.add(x);
  EXPECT_NEAR(s.mean(), mean(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.25);
  double var = 0.0;
  for (double x : xs) var += (x - s.mean()) * (x - s.mean());
  var /= xs.size() - 1;
  EXPECT_NEAR(s.variance(), var, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  Rng r(21);
  for (int i = 0; i < 500; ++i) {
    const double x = r.normal();
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
  EXPECT_THROW(percentile({}, 50), precondition_error);
  EXPECT_THROW(percentile(xs, 101), precondition_error);
}

TEST(Stats, RmseAndMaxAbsDiff) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {1, 4, 3};
  EXPECT_NEAR(rmse(a, b), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 2.0);
  EXPECT_DOUBLE_EQ(rmse(a, a), 0.0);
}

TEST(Stats, MinMaxGuards) {
  EXPECT_THROW(max_of({}), precondition_error);
  EXPECT_THROW(min_of({}), precondition_error);
  const std::vector<double> xs = {3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(max_of(xs), 3.0);
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(sum(xs), 4.0);
}

// ------------------------------------------------------------------- csv
TEST(Csv, SimpleRoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b", "c"});
  w.write_row({"1", "2", "3"});
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Csv, QuotingRoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"has,comma", "has\"quote", "has\nnewline", "plain"});
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "has,comma");
  EXPECT_EQ(rows[0][1], "has\"quote");
  EXPECT_EQ(rows[0][2], "has\nnewline");
  EXPECT_EQ(rows[0][3], "plain");
}

TEST(Csv, EmptyCellsPreserved) {
  const auto rows = parse_csv("a,,c\n,,\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][1], "");
  EXPECT_EQ(rows[1].size(), 3u);
}

TEST(Csv, FormatDoubleCompact) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(1234567.0, 4), "1.235e+06");
}

// ----------------------------------------------------------------- table
TEST(TextTable, RendersAlignedGrid) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row("y", {2.5}, 1);
  const std::string out = t.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| 2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), precondition_error);
}

TEST(TextTable, RenderBeforeHeaderThrows) {
  TextTable t;
  EXPECT_THROW(t.render(), precondition_error);
}

TEST(Heatmap, DimsAndClamping) {
  const std::vector<double> v = {0.0, 0.5, 1.0, 2.0};
  const std::string out = render_heatmap(v, 2, 0.0, 1.0);
  // Two rows, each 2 cells x 2 chars + newline.
  EXPECT_EQ(out.size(), 2u * (2 * 2 + 1));
  EXPECT_THROW(render_heatmap(v, 3, 0.0, 1.0), precondition_error);
}

// -------------------------------------------------------------- parallel
TEST(Parallel, ComputesAllIndices) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ZeroIterationsIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, PropagatesException) {
  EXPECT_THROW(parallel_for(8,
                            [](std::size_t i) {
                              if (i == 3) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(Parallel, WorkerOverride) {
  set_parallel_workers(2);
  EXPECT_EQ(parallel_workers(), 2u);
  set_parallel_workers(0);
  EXPECT_GE(parallel_workers(), 1u);
}

// --------------------------------------------------------------- metrics
TEST(Metrics, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.25);
}

TEST(Metrics, HistogramBucketBoundsAreMonotone) {
  double prev = 0.0;
  for (std::size_t i = 0; i + 1 < LatencyHistogram::kBucketCount; ++i) {
    const double bound = LatencyHistogram::bucket_upper_us(i);
    EXPECT_GT(bound, prev) << "bucket " << i;
    prev = bound;
  }
  EXPECT_TRUE(std::isinf(
      LatencyHistogram::bucket_upper_us(LatencyHistogram::kBucketCount - 1)));
  // Every value lands in the bucket whose bound covers it.
  for (double us : {0.0, 0.05, 0.1, 1.0, 37.5, 1e4, 1e6, 1e9}) {
    const std::size_t i = LatencyHistogram::bucket_index(us);
    EXPECT_GE(LatencyHistogram::bucket_upper_us(i), us);
    if (i > 0) {
      EXPECT_LT(LatencyHistogram::bucket_upper_us(i - 1), us);
    }
  }
}

TEST(Metrics, EmptyHistogramReadsZero) {
  const auto snap = LatencyHistogram{}.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.percentile(99.9), 0.0);
  EXPECT_DOUBLE_EQ(snap.mean_us(), 0.0);
}

TEST(Metrics, HistogramSingleValueStaysWithinBucketResolution) {
  LatencyHistogram hist;
  hist.record_us(100.0);
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.max_us, 100.0);
  // One geometric bucket spans a factor of 2^(1/4): any percentile of a
  // single sample must read inside that bucket.
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    EXPECT_GT(snap.percentile(p), 100.0 / 1.2) << p;
    EXPECT_LE(snap.percentile(p), 100.0 * 1.2) << p;
  }
}

TEST(Metrics, HistogramPercentilesTrackUniformSamples) {
  LatencyHistogram hist;
  for (int i = 1; i <= 10000; ++i) hist.record_us(static_cast<double>(i));
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 10000u);
  EXPECT_NEAR(snap.mean_us(), 5000.5, 1.0);
  EXPECT_DOUBLE_EQ(snap.max_us, 10000.0);
  EXPECT_NEAR(snap.percentile(50.0), 5000.0, 0.1 * 5000.0);
  EXPECT_NEAR(snap.percentile(90.0), 9000.0, 0.1 * 9000.0);
  EXPECT_NEAR(snap.percentile(99.0), 9900.0, 0.1 * 9900.0);
  // Percentiles are monotone and bounded by the recorded maximum.
  double prev = 0.0;
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const double v = snap.percentile(p);
    EXPECT_GE(v, prev);
    EXPECT_LE(v, snap.max_us);
    prev = v;
  }
}

TEST(Metrics, HistogramOverflowBucketClampsToRecordedMax) {
  LatencyHistogram hist;
  hist.record_us(5e8);  // 500 s, beyond the finite bucket range
  const auto snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(snap.percentile(99.0), 5e8);
  EXPECT_DOUBLE_EQ(snap.max_us, 5e8);
}

TEST(Metrics, HistogramMergeMatchesCombinedRecording) {
  LatencyHistogram low, high, combined;
  for (int i = 1; i <= 500; ++i) {
    low.record_us(static_cast<double>(i));
    combined.record_us(static_cast<double>(i));
  }
  for (int i = 501; i <= 1000; ++i) {
    high.record_us(static_cast<double>(i));
    combined.record_us(static_cast<double>(i));
  }
  auto merged = low.snapshot();
  merged.merge(high.snapshot());
  const auto expected = combined.snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_DOUBLE_EQ(merged.sum_us, expected.sum_us);
  EXPECT_DOUBLE_EQ(merged.max_us, expected.max_us);
  EXPECT_EQ(merged.buckets, expected.buckets);
  for (double p : {50.0, 90.0, 99.0})
    EXPECT_DOUBLE_EQ(merged.percentile(p), expected.percentile(p));
}

TEST(Metrics, RegistryHandsOutStableNamedInstruments) {
  MetricsRegistry registry;
  Counter& a = registry.counter("requests");
  Counter& b = registry.counter("requests");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(registry.counters().size(), 1u);
  EXPECT_EQ(registry.counters()[0].second, 3u);

  LatencyHistogram& h = registry.histogram("parse");
  h.record_us(2.0);
  EXPECT_EQ(&registry.histogram("parse"), &h);
  const auto hists = registry.histograms();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].first, "parse");
  EXPECT_EQ(hists[0].second.count, 1u);

  registry.gauge("load").set(0.5);
  EXPECT_DOUBLE_EQ(registry.gauges()[0].second, 0.5);
}

// Concurrent recorders against one registry: relaxed atomics must not
// lose events, and get-or-create must be safe against racing lookups.
// Runs under TSan in the tier-1 leg.
TEST(MetricsRegistry, ConcurrentRecordersStayExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.counter("events").inc();
        registry.histogram("span").record_us(
            static_cast<double>(1 + (t * kPerThread + i) % 1000));
        if (i % 64 == 0) registry.gauge("load").set(static_cast<double>(t));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(registry.counters()[0].second,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto snap = registry.histograms()[0].second;
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_DOUBLE_EQ(snap.max_us, 1000.0);
}

}  // namespace
}  // namespace tecfan
