#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/csv.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/trace.h"
#include "util/units.h"

namespace tecfan {
namespace {

// ---------------------------------------------------------------- units
TEST(Units, CelsiusKelvinRoundTrip) {
  EXPECT_DOUBLE_EQ(celsius_to_kelvin(0.0), 273.15);
  EXPECT_DOUBLE_EQ(kelvin_to_celsius(celsius_to_kelvin(85.3)), 85.3);
  EXPECT_DOUBLE_EQ(celsius_to_kelvin(-273.15), 0.0);
}

TEST(Units, GeometryConversions) {
  EXPECT_DOUBLE_EQ(mm_to_m(2.6), 2.6e-3);
  EXPECT_DOUBLE_EQ(mm2_to_m2(9.36), 9.36e-6);
  EXPECT_NEAR(cfm_to_m3s(60.0), 0.0283, 1e-3);
}

// ----------------------------------------------------------------- error
TEST(Error, RequireThrowsPreconditionError) {
  EXPECT_THROW(TECFAN_REQUIRE(false, "nope"), precondition_error);
  EXPECT_NO_THROW(TECFAN_REQUIRE(true, ""));
}

TEST(Error, AssertThrowsInvariantError) {
  EXPECT_THROW(TECFAN_ASSERT(1 == 2, "bug"), invariant_error);
}

TEST(Error, MessagesCarryContext) {
  try {
    TECFAN_REQUIRE(false, "the widget broke");
    FAIL() << "should have thrown";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("the widget broke"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("util_test.cpp"), std::string::npos);
  }
}

// ------------------------------------------------------------------- rng
TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 40000; ++i) s.add(r.normal(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, BelowIsUnbiasedAndInRange) {
  Rng r(17);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[r.below(7)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 450);
}

TEST(Rng, BelowRejectsZero) {
  Rng r(1);
  EXPECT_THROW(r.below(0), precondition_error);
}

TEST(Rng, ForkIsIndependentAndStable) {
  Rng base(99);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1_again = base.fork(1);
  EXPECT_EQ(f1.next_u64(), f1_again.next_u64());
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

TEST(Rng, UniformRangeRespected) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
  EXPECT_THROW(r.uniform(5.0, -2.0), precondition_error);
}

// ----------------------------------------------------------------- stats
TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats s;
  const std::vector<double> xs = {1.0, 2.5, -3.0, 7.25, 0.0, 4.5};
  for (double x : xs) s.add(x);
  EXPECT_NEAR(s.mean(), mean(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.25);
  double var = 0.0;
  for (double x : xs) var += (x - s.mean()) * (x - s.mean());
  var /= xs.size() - 1;
  EXPECT_NEAR(s.variance(), var, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  Rng r(21);
  for (int i = 0; i < 500; ++i) {
    const double x = r.normal();
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
  EXPECT_THROW(percentile({}, 50), precondition_error);
  EXPECT_THROW(percentile(xs, 101), precondition_error);
}

TEST(Stats, RmseAndMaxAbsDiff) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {1, 4, 3};
  EXPECT_NEAR(rmse(a, b), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 2.0);
  EXPECT_DOUBLE_EQ(rmse(a, a), 0.0);
}

TEST(Stats, MinMaxGuards) {
  EXPECT_THROW(max_of({}), precondition_error);
  EXPECT_THROW(min_of({}), precondition_error);
  const std::vector<double> xs = {3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(max_of(xs), 3.0);
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(sum(xs), 4.0);
}

// ------------------------------------------------------------------- csv
TEST(Csv, SimpleRoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b", "c"});
  w.write_row({"1", "2", "3"});
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Csv, QuotingRoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"has,comma", "has\"quote", "has\nnewline", "plain"});
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "has,comma");
  EXPECT_EQ(rows[0][1], "has\"quote");
  EXPECT_EQ(rows[0][2], "has\nnewline");
  EXPECT_EQ(rows[0][3], "plain");
}

TEST(Csv, EmptyCellsPreserved) {
  const auto rows = parse_csv("a,,c\n,,\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][1], "");
  EXPECT_EQ(rows[1].size(), 3u);
}

TEST(Csv, FormatDoubleCompact) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(1234567.0, 4), "1.235e+06");
}

// ----------------------------------------------------------------- table
TEST(TextTable, RendersAlignedGrid) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row("y", {2.5}, 1);
  const std::string out = t.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| 2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), precondition_error);
}

TEST(TextTable, RenderBeforeHeaderThrows) {
  TextTable t;
  EXPECT_THROW(t.render(), precondition_error);
}

TEST(Heatmap, DimsAndClamping) {
  const std::vector<double> v = {0.0, 0.5, 1.0, 2.0};
  const std::string out = render_heatmap(v, 2, 0.0, 1.0);
  // Two rows, each 2 cells x 2 chars + newline.
  EXPECT_EQ(out.size(), 2u * (2 * 2 + 1));
  EXPECT_THROW(render_heatmap(v, 3, 0.0, 1.0), precondition_error);
}

// -------------------------------------------------------------- parallel
TEST(Parallel, ComputesAllIndices) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ZeroIterationsIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, PropagatesException) {
  EXPECT_THROW(parallel_for(8,
                            [](std::size_t i) {
                              if (i == 3) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(Parallel, WorkerOverride) {
  set_parallel_workers(2);
  EXPECT_EQ(parallel_workers(), 2u);
  set_parallel_workers(0);
  EXPECT_GE(parallel_workers(), 1u);
}

// --------------------------------------------------------------- metrics
TEST(Metrics, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.25);
}

TEST(Metrics, HistogramBucketBoundsAreMonotone) {
  double prev = 0.0;
  for (std::size_t i = 0; i + 1 < LatencyHistogram::kBucketCount; ++i) {
    const double bound = LatencyHistogram::bucket_upper_us(i);
    EXPECT_GT(bound, prev) << "bucket " << i;
    prev = bound;
  }
  EXPECT_TRUE(std::isinf(
      LatencyHistogram::bucket_upper_us(LatencyHistogram::kBucketCount - 1)));
  // Every value lands in the bucket whose bound covers it.
  for (double us : {0.0, 0.05, 0.1, 1.0, 37.5, 1e4, 1e6, 1e9}) {
    const std::size_t i = LatencyHistogram::bucket_index(us);
    EXPECT_GE(LatencyHistogram::bucket_upper_us(i), us);
    if (i > 0) {
      EXPECT_LT(LatencyHistogram::bucket_upper_us(i - 1), us);
    }
  }
}

TEST(Metrics, EmptyHistogramReadsZero) {
  const auto snap = LatencyHistogram{}.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.percentile(99.9), 0.0);
  EXPECT_DOUBLE_EQ(snap.mean_us(), 0.0);
}

TEST(Metrics, HistogramSingleValueStaysWithinBucketResolution) {
  LatencyHistogram hist;
  hist.record_us(100.0);
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.max_us, 100.0);
  // One geometric bucket spans a factor of 2^(1/4): any percentile of a
  // single sample must read inside that bucket.
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    EXPECT_GT(snap.percentile(p), 100.0 / 1.2) << p;
    EXPECT_LE(snap.percentile(p), 100.0 * 1.2) << p;
  }
}

TEST(Metrics, HistogramPercentilesTrackUniformSamples) {
  LatencyHistogram hist;
  for (int i = 1; i <= 10000; ++i) hist.record_us(static_cast<double>(i));
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 10000u);
  EXPECT_NEAR(snap.mean_us(), 5000.5, 1.0);
  EXPECT_DOUBLE_EQ(snap.max_us, 10000.0);
  EXPECT_NEAR(snap.percentile(50.0), 5000.0, 0.1 * 5000.0);
  EXPECT_NEAR(snap.percentile(90.0), 9000.0, 0.1 * 9000.0);
  EXPECT_NEAR(snap.percentile(99.0), 9900.0, 0.1 * 9900.0);
  // Percentiles are monotone and bounded by the recorded maximum.
  double prev = 0.0;
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const double v = snap.percentile(p);
    EXPECT_GE(v, prev);
    EXPECT_LE(v, snap.max_us);
    prev = v;
  }
}

TEST(Metrics, HistogramOverflowBucketClampsToRecordedMax) {
  LatencyHistogram hist;
  hist.record_us(5e8);  // 500 s, beyond the finite bucket range
  const auto snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(snap.percentile(99.0), 5e8);
  EXPECT_DOUBLE_EQ(snap.max_us, 5e8);
}

TEST(Metrics, HistogramMergeMatchesCombinedRecording) {
  LatencyHistogram low, high, combined;
  for (int i = 1; i <= 500; ++i) {
    low.record_us(static_cast<double>(i));
    combined.record_us(static_cast<double>(i));
  }
  for (int i = 501; i <= 1000; ++i) {
    high.record_us(static_cast<double>(i));
    combined.record_us(static_cast<double>(i));
  }
  auto merged = low.snapshot();
  merged.merge(high.snapshot());
  const auto expected = combined.snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_DOUBLE_EQ(merged.sum_us, expected.sum_us);
  EXPECT_DOUBLE_EQ(merged.max_us, expected.max_us);
  EXPECT_EQ(merged.buckets, expected.buckets);
  for (double p : {50.0, 90.0, 99.0})
    EXPECT_DOUBLE_EQ(merged.percentile(p), expected.percentile(p));
}

TEST(Metrics, RegistryHandsOutStableNamedInstruments) {
  MetricsRegistry registry;
  Counter& a = registry.counter("requests");
  Counter& b = registry.counter("requests");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(registry.counters().size(), 1u);
  EXPECT_EQ(registry.counters()[0].second, 3u);

  LatencyHistogram& h = registry.histogram("parse");
  h.record_us(2.0);
  EXPECT_EQ(&registry.histogram("parse"), &h);
  const auto hists = registry.histograms();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].first, "parse");
  EXPECT_EQ(hists[0].second.count, 1u);

  registry.gauge("load").set(0.5);
  EXPECT_DOUBLE_EQ(registry.gauges()[0].second, 0.5);
}

// Concurrent recorders against one registry: relaxed atomics must not
// lose events, and get-or-create must be safe against racing lookups.
// Runs under TSan in the tier-1 leg.
TEST(MetricsRegistry, ConcurrentRecordersStayExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.counter("events").inc();
        registry.histogram("span").record_us(
            static_cast<double>(1 + (t * kPerThread + i) % 1000));
        if (i % 64 == 0) registry.gauge("load").set(static_cast<double>(t));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(registry.counters()[0].second,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto snap = registry.histograms()[0].second;
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_DOUBLE_EQ(snap.max_us, 1000.0);
}

// ----------------------------------------------------------------- trace

TEST(Trace, WireFormatRoundTrips) {
  TraceContext ctx;
  ctx.trace_id = 0xdeadbeef01ull;
  ctx.span_id = 0x42ull;
  ctx.sampled = true;
  const std::string wire = ctx.wire();
  const auto back = TraceContext::from_wire(wire);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->trace_id, ctx.trace_id);
  // The sender's root span id becomes the receiver's parent.
  EXPECT_EQ(back->parent_span_id, ctx.span_id);
  EXPECT_TRUE(back->sampled);
  EXPECT_EQ(back->span_id, 0u);  // the adopting tier allocates its own

  EXPECT_FALSE(TraceContext::from_wire(""));
  EXPECT_FALSE(TraceContext::from_wire("nope"));
  EXPECT_FALSE(TraceContext::from_wire("12345"));
  EXPECT_FALSE(TraceContext::from_wire("0-1f"));  // zero trace id
  EXPECT_FALSE(TraceContext::from_wire("zz-1f"));
}

TEST(Trace, HeadSamplingIsDeterministicOneInN) {
  Tracer tracer(TraceTier::kServer);
  tracer.set_sample_every(4);
  int sampled = 0;
  for (int i = 0; i < 100; ++i)
    if (tracer.start_trace().sampled) ++sampled;
  EXPECT_EQ(sampled, 25);
  EXPECT_EQ(tracer.sampled_traces(), 25u);

  // Disabled tracer: all-zero contexts, nothing counted.
  Tracer off(TraceTier::kServer);
  const TraceContext ctx = off.start_trace();
  EXPECT_FALSE(ctx.sampled);
  EXPECT_EQ(ctx.trace_id, 0u);
  EXPECT_EQ(off.sampled_traces(), 0u);
}

TEST(Trace, AdoptKeepsIdentityAndCountsParticipation) {
  Tracer tracer(TraceTier::kServer);
  TraceContext incoming;
  incoming.trace_id = 77;
  incoming.parent_span_id = 5;
  incoming.sampled = true;
  const TraceContext adopted = tracer.adopt(incoming);
  EXPECT_TRUE(adopted.sampled);
  EXPECT_EQ(adopted.trace_id, 77u);
  EXPECT_EQ(adopted.parent_span_id, 5u);
  EXPECT_NE(adopted.span_id, 0u);
  EXPECT_EQ(tracer.adopted_traces(), 1u);
  EXPECT_EQ(tracer.sampled_traces(), 0u);  // participation, not a head

  EXPECT_FALSE(tracer.adopt(TraceContext{}).sampled);
  EXPECT_EQ(tracer.adopted_traces(), 1u);
}

TEST(Trace, RingsDropOldestUnderOverflow) {
  Tracer tracer(TraceTier::kServer);
  tracer.set_sample_every(1);
  const TraceContext ctx = tracer.start_trace();
  const auto t0 = Tracer::Clock::now();
  // Overfill by 3x: the rings must keep serving the newest spans and
  // never grow past capacity.
  const std::size_t capacity =
      Tracer::kStripes * Tracer::kSlotsPerStripe;
  for (std::size_t i = 0; i < 3 * capacity; ++i)
    tracer.record(ctx, SpanName::kCompute, t0, t0 + std::chrono::microseconds(1));
  const auto spans = tracer.collect();
  EXPECT_LE(spans.size(), capacity);
  // One thread writes one stripe; that stripe must be full, not grown.
  EXPECT_GE(spans.size(), Tracer::kSlotsPerStripe / 2);
  for (const Span& s : spans) EXPECT_EQ(s.trace_id, ctx.trace_id);
}

TEST(Trace, ScopedSpanDrainsOpenCountAndUnsampledIsInert) {
  Tracer tracer(TraceTier::kServer);
  tracer.set_sample_every(1);
  const TraceContext ctx = tracer.start_trace();
  {
    ScopedSpan span(&tracer, ctx, SpanName::kCompute);
    EXPECT_EQ(tracer.open_spans(), 1);
  }
  EXPECT_EQ(tracer.open_spans(), 0);
  EXPECT_EQ(tracer.collect().size(), 1u);

  // Unsampled context: no open-count traffic, no ring writes.
  TraceContext cold;
  {
    ScopedSpan span(&tracer, cold, SpanName::kCompute);
    EXPECT_EQ(tracer.open_spans(), 0);
  }
  EXPECT_EQ(tracer.collect().size(), 1u);
}

TEST(Trace, CompletedTraceAssemblesRootAndChildren) {
  Tracer tracer(TraceTier::kRouter);
  tracer.set_sample_every(1);
  const TraceContext ctx = tracer.start_trace();
  const auto t0 = Tracer::Clock::now();
  tracer.record(ctx, SpanName::kRoute, t0, t0 + std::chrono::microseconds(3));
  tracer.record(ctx, SpanName::kBackendWait, t0 + std::chrono::microseconds(3),
                t0 + std::chrono::microseconds(9));
  tracer.record_root(ctx, t0, t0 + std::chrono::microseconds(10));

  const auto traces = tracer.completed_traces(8);
  ASSERT_EQ(traces.size(), 1u);
  const CompletedTrace& t = traces[0];
  EXPECT_EQ(t.trace_id, ctx.trace_id);
  ASSERT_EQ(t.spans.size(), 3u);
  // Sorted by start: the root e2e opened first.
  EXPECT_EQ(t.spans[0].name, SpanName::kE2e);
  for (const Span& s : t.spans) {
    if (s.name != SpanName::kE2e) {
      EXPECT_EQ(s.parent_span_id, ctx.span_id);
    }
  }

  const std::string json = trace_to_json(t);
  EXPECT_NE(json.find("\"e2e\""), std::string::npos);
  EXPECT_NE(json.find("\"route\""), std::string::npos);
  EXPECT_NE(json.find("\"backend_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"router\""), std::string::npos);
}

TEST(Trace, IncompleteTraceIsNotReturned) {
  Tracer tracer(TraceTier::kRouter);
  tracer.set_sample_every(1);
  const TraceContext ctx = tracer.start_trace();
  const auto t0 = Tracer::Clock::now();
  tracer.record(ctx, SpanName::kRoute, t0, t0 + std::chrono::microseconds(1));
  // No e2e root recorded yet: the trace is still open.
  EXPECT_TRUE(tracer.completed_traces(8).empty());
}

TEST(Trace, ReplySpanEncodingRoundTrips) {
  std::vector<Span> spans(2);
  spans[0].name = SpanName::kE2e;
  spans[0].thread = 3;
  spans[0].start_us = 1000;
  spans[0].duration_us = 250;
  spans[1].name = SpanName::kCompute;
  spans[1].thread = 7;
  spans[1].start_us = 1100;
  spans[1].duration_us = 90;
  const std::string encoded = encode_reply_spans(spans, 1000);
  // No protocol-special characters: the field serializes unquoted.
  EXPECT_EQ(encoded.find(' '), std::string::npos);
  EXPECT_EQ(encoded.find('"'), std::string::npos);
  const auto back = decode_reply_spans(encoded);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name, SpanName::kE2e);
  EXPECT_EQ(back[0].start_rel_us, 0u);
  EXPECT_EQ(back[0].duration_us, 250u);
  EXPECT_EQ(back[1].name, SpanName::kCompute);
  EXPECT_EQ(back[1].thread, 7u);
  EXPECT_EQ(back[1].start_rel_us, 100u);

  // Unknown span names are skipped, not fatal.
  EXPECT_TRUE(decode_reply_spans("warp:1:2:3").empty());
  EXPECT_TRUE(decode_reply_spans("garbage").empty());
}

// Writers on many threads racing a collector: wait-free recording must
// neither tear spans nor crash the reader. Runs under TSan in tier-1.
TEST(Trace, ConcurrentRecordAndCollectStayCoherent) {
  Tracer tracer(TraceTier::kServer);
  tracer.set_sample_every(1);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const Span& s : tracer.collect()) {
        // A torn span would show a mismatched duration marker.
        EXPECT_EQ(s.duration_us, s.start_us + 1);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&tracer, t] {
      const TraceContext ctx = tracer.start_trace();
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t mark =
            static_cast<std::uint64_t>(t) * kPerThread + i;
        tracer.record_span(ctx.trace_id, tracer.next_span_id(), ctx.span_id,
                           SpanName::kCompute, TraceTier::kServer, 0, mark,
                           mark + 1);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  const auto spans = tracer.collect();
  EXPECT_LE(spans.size(), Tracer::kStripes * Tracer::kSlotsPerStripe);
  for (const Span& s : spans) EXPECT_EQ(s.duration_us, s.start_us + 1);
}

// --------------------------------------------------------- prometheus text

/// Minimal format check in the spirit of `promtool check metrics`: every
/// sample line belongs to a HELP/TYPE-declared family, histogram buckets
/// are cumulative with a final +Inf equal to _count, and the exposition
/// ends with the explicit EOF marker.
void check_prometheus_format(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::set<std::string> declared;
  std::string last_family;
  double last_bucket = 0.0, prev_le = -1.0;
  bool saw_inf = false;
  double inf_count = -1.0, count_value = -2.0;
  bool ended = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(ended) << "content after # EOF: " << line;
    if (line == "# EOF") {
      ended = true;
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      std::istringstream ls(line);
      std::string hash, kind, family;
      ls >> hash >> kind >> family;
      declared.insert(family);
      continue;
    }
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    ASSERT_NE(line[0], '#') << "unknown comment: " << line;
    const std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    std::string name = line.substr(0, name_end);
    std::string family = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (family.size() > s.size() &&
          family.compare(family.size() - s.size(), s.size(), s) == 0) {
        const std::string stem = family.substr(0, family.size() - s.size());
        if (declared.count(stem)) family = stem;
      }
    }
    EXPECT_TRUE(declared.count(family))
        << "sample without HELP/TYPE: " << line;
    const double value = std::stod(line.substr(line.rfind(' ') + 1));
    if (name.size() > 7 &&
        name.compare(name.size() - 7, 7, "_bucket") == 0) {
      if (family != last_family) {
        last_family = family;
        prev_le = -1.0;
        saw_inf = false;
      }
      const auto le_pos = line.find("le=\"");
      ASSERT_NE(le_pos, std::string::npos) << line;
      const std::string le =
          line.substr(le_pos + 4, line.find('"', le_pos + 4) - le_pos - 4);
      if (le == "+Inf") {
        saw_inf = true;
        inf_count = value;
      } else {
        const double bound = std::stod(le);
        EXPECT_GT(bound, prev_le) << "non-monotone le in " << line;
        EXPECT_GE(value, last_bucket) << "non-cumulative bucket: " << line;
        prev_le = bound;
      }
      last_bucket = value;
    } else if (name.size() > 6 &&
               name.compare(name.size() - 6, 6, "_count") == 0 &&
               declared.count(name.substr(0, name.size() - 6))) {
      count_value = value;
      EXPECT_TRUE(saw_inf) << "histogram missing +Inf: " << name;
      EXPECT_DOUBLE_EQ(inf_count, count_value)
          << "+Inf bucket != _count for " << name;
    }
  }
  EXPECT_TRUE(ended) << "exposition does not end with # EOF";
}

TEST(Metrics, PrometheusRenderPassesFormatCheck) {
  MetricsRegistry registry;
  registry.counter("requests").inc();
  registry.counter("requests").inc();
  registry.gauge("pending_requests").set(3.0);
  auto& h = registry.histogram("e2e_hit");
  for (int i = 1; i <= 100; ++i) h.record_us(static_cast<double>(i * 13));
  const std::string text = render_prometheus(registry.snapshot());
  check_prometheus_format(text);
  EXPECT_NE(text.find("tecfan_requests_total 2"), std::string::npos);
  EXPECT_NE(text.find("tecfan_pending_requests 3"), std::string::npos);
  EXPECT_NE(text.find("tecfan_e2e_hit_latency_us_count 100"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

TEST(Metrics, PrometheusRenderOfEmptyRegistryIsJustEof) {
  MetricsRegistry registry;
  const std::string text = render_prometheus(registry.snapshot());
  check_prometheus_format(text);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

}  // namespace
}  // namespace tecfan
