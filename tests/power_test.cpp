#include <gtest/gtest.h>

#include <cmath>

#include "power/breakdown.h"
#include "power/dvfs.h"
#include "power/dynamic.h"
#include "power/fan.h"
#include "power/leakage.h"
#include "thermal/floorplan.h"
#include "util/error.h"

namespace tecfan::power {
namespace {

// ------------------------------------------------------------------- fan
TEST(Fan, DynatronAnchorsMatchPaper) {
  const FanModel fan = FanModel::dynatron_r16();
  EXPECT_EQ(fan.level_count(), 8);
  EXPECT_NEAR(fan.power_w(0), 14.4, 1e-9);  // paper: 14.4 W at level 1
  EXPECT_NEAR(fan.power_w(1), 3.8, 0.05);   // paper: 3.8 W at level 2
}

TEST(Fan, CubicPowerLaw) {
  const FanModel fan = FanModel::dynatron_r16();
  for (int l = 0; l < fan.level_count(); ++l) {
    const double rpm_ratio = fan.level(l).rpm / fan.level(0).rpm;
    EXPECT_NEAR(fan.power_w(l), 14.4 * std::pow(rpm_ratio, 3.0), 1e-9);
  }
}

TEST(Fan, AirflowProportionalToRpm) {
  const FanModel fan = FanModel::dynatron_r16();
  for (int l = 1; l < fan.level_count(); ++l) {
    EXPECT_LT(fan.airflow_cfm(l), fan.airflow_cfm(l - 1));
    EXPECT_NEAR(fan.airflow_cfm(l) / fan.airflow_cfm(0),
                fan.level(l).rpm / fan.level(0).rpm, 1e-9);
  }
}

TEST(Fan, LevelBoundsChecked) {
  const FanModel fan = FanModel::dynatron_r16();
  EXPECT_THROW(fan.level(-1), precondition_error);
  EXPECT_THROW(fan.level(8), precondition_error);
  EXPECT_EQ(fan.slowest_level(), 7);
}

TEST(Fan, RejectsUnorderedLevels) {
  EXPECT_THROW(FanModel({{1000, 10, 1.0}, {2000, 20, 2.0}}),
               precondition_error);
  EXPECT_THROW(FanModel({{2000, 20, 1.0}, {1000, 10, 2.0}}),
               precondition_error);
  EXPECT_THROW(FanModel({}), precondition_error);
}

// ------------------------------------------------------------------ dvfs
TEST(Dvfs, SccTableShape) {
  const DvfsTable t = DvfsTable::scc();
  EXPECT_EQ(t.level_count(), 6);
  EXPECT_NEAR(t.frequency_hz(0), 1.0e9, 1);
  EXPECT_NEAR(t.level(0).vdd, 1.10, 1e-9);
  for (int l = 1; l < t.level_count(); ++l) {
    EXPECT_LT(t.frequency_hz(l), t.frequency_hz(l - 1));
    EXPECT_LE(t.level(l).vdd, t.level(l - 1).vdd);
  }
}

TEST(Dvfs, DynScaleIsEq7) {
  const DvfsTable t = DvfsTable::scc();
  // Eq. (7): (F_new/F_old) * (V_new/V_old)^2.
  const double expected =
      (0.9e9 / 1.0e9) * (1.05 / 1.10) * (1.05 / 1.10);
  EXPECT_NEAR(t.dyn_scale(0, 1), expected, 1e-12);
  EXPECT_NEAR(t.dyn_scale(1, 0), 1.0 / expected, 1e-12);
  EXPECT_DOUBLE_EQ(t.dyn_scale(3, 3), 1.0);
}

TEST(Dvfs, FreqScaleIsEq11) {
  const DvfsTable t = DvfsTable::scc();
  EXPECT_NEAR(t.freq_scale(0, 5), 0.533, 1e-9);
  EXPECT_NEAR(t.freq_scale(5, 0) * t.freq_scale(0, 5), 1.0, 1e-12);
}

TEST(Dvfs, SuperlinearPowerReductionAtLinearPerformanceCost) {
  // The paper's DVFS motivation: dynamic power drops much faster than
  // frequency (f * V(f)^2, ~f^1.8 over this table's voltage range).
  const DvfsTable t = DvfsTable::scc();
  const int bottom = t.slowest_level();
  EXPECT_LT(t.dyn_scale(0, bottom),
            std::pow(t.freq_scale(0, bottom), 1.5));
}

TEST(Dvfs, ValidationRejectsBadTables) {
  EXPECT_THROW(DvfsTable({}), precondition_error);
  EXPECT_THROW(DvfsTable({{1e9, 1.0}, {2e9, 1.1}}), precondition_error);
  EXPECT_THROW(DvfsTable({{2e9, 1.0}, {1e9, 1.1}}), precondition_error);
  EXPECT_THROW(DvfsTable::scc().level(6), precondition_error);
}

// --------------------------------------------------------------- leakage
TEST(Leakage, LinearModelIsEq6) {
  LinearLeakageModel m;
  m.p_tdp_leak_w = 20.0;
  m.t_tdp_k = 363.15;
  m.alpha_w_per_k = 0.25;
  // At T_TDP the chip leaks exactly P_TDPleak, distributed by area.
  EXPECT_NEAR(m.chip_leakage_w(363.15), 20.0, 1e-12);
  EXPECT_NEAR(m.component_leakage_w(0.1, 363.15), 2.0, 1e-12);
  // Linear slope above and below.
  EXPECT_NEAR(m.chip_leakage_w(373.15), 22.5, 1e-12);
  EXPECT_NEAR(m.chip_leakage_w(343.15), 15.0, 1e-12);
}

TEST(Leakage, LinearClampsAtZero) {
  LinearLeakageModel m;
  m.p_tdp_leak_w = 1.0;
  m.alpha_w_per_k = 1.0;
  EXPECT_DOUBLE_EQ(m.chip_leakage_w(m.t_tdp_k - 100.0), 0.0);
}

TEST(Leakage, QuadraticMatchedTangentAtTdp) {
  const LinearLeakageModel lin;
  const QuadraticLeakageModel quad =
      QuadraticLeakageModel::matched_to(lin, 2.5e-3);
  // Same value at T_TDP.
  EXPECT_NEAR(quad.chip_leakage_w(lin.t_tdp_k), lin.p_tdp_leak_w, 1e-9);
  // Same slope (finite difference).
  const double h = 0.01;
  const double slope_quad = (quad.chip_leakage_w(lin.t_tdp_k + h) -
                             quad.chip_leakage_w(lin.t_tdp_k - h)) /
                            (2 * h);
  EXPECT_NEAR(slope_quad, lin.alpha_w_per_k, 1e-6);
}

TEST(Leakage, QuadraticConvexAboveTangentLine) {
  // Leakage is convex in temperature: the linear Eq. (6) model, tangent at
  // the TDP point, underestimates the quadratic plant everywhere else —
  // the controller-vs-plant leakage mismatch is one-sided.
  const LinearLeakageModel lin;
  const QuadraticLeakageModel quad = QuadraticLeakageModel::matched_to(lin);
  for (double t = 320.0; t < 380.0; t += 5.0) {
    const double tangent =
        lin.p_tdp_leak_w + lin.alpha_w_per_k * (t - lin.t_tdp_k);
    EXPECT_GE(quad.chip_leakage_w(t), tangent - 1e-9);
  }
}

TEST(Leakage, AreaFractionGuarded) {
  const LinearLeakageModel lin;
  EXPECT_THROW(lin.component_leakage_w(1.5, 350.0), precondition_error);
  EXPECT_THROW(lin.component_leakage_w(-0.1, 350.0), precondition_error);
}

// --------------------------------------------------------------- dynamic
TEST(Dynamic, ComponentPowerScalesLinearly) {
  const DynamicPowerModel m = DynamicPowerModel::scc_calibrated();
  const thermal::Floorplan fp = thermal::Floorplan::scc(1, 1);
  const auto& comp = fp.component(
      fp.index_of(0, thermal::ComponentKind::kFpMul));
  const double base = m.component_power_w(comp, 0.5, 1.0, 1.0);
  EXPECT_GT(base, 0.0);
  EXPECT_NEAR(m.component_power_w(comp, 1.0, 1.0, 1.0), 2 * base, 1e-12);
  EXPECT_NEAR(m.component_power_w(comp, 0.5, 0.5, 1.0), base / 2, 1e-12);
  EXPECT_NEAR(m.component_power_w(comp, 0.5, 1.0, 3.0), 3 * base, 1e-12);
  EXPECT_DOUBLE_EQ(m.component_power_w(comp, 0.0, 1.0, 1.0), 0.0);
}

TEST(Dynamic, LogicDenserThanCaches) {
  const DynamicPowerModel m = DynamicPowerModel::scc_calibrated();
  EXPECT_GT(m.density_w_per_m2(thermal::ComponentKind::kFpMul),
            m.density_w_per_m2(thermal::ComponentKind::kL2));
  EXPECT_GT(m.density_w_per_m2(thermal::ComponentKind::kIntExec),
            m.density_w_per_m2(thermal::ComponentKind::kVoltReg));
}

TEST(Dynamic, PeakChipPowerIsPlausible) {
  const DynamicPowerModel m = DynamicPowerModel::scc_calibrated();
  const thermal::Floorplan fp = thermal::Floorplan::scc();
  const double peak = m.peak_chip_power_w(fp);
  // All components at activity 1 and top DVFS: same order as the SCC's
  // measured full-chip power.
  EXPECT_GT(peak, 60.0);
  EXPECT_LT(peak, 250.0);
}

TEST(Dynamic, InputValidation) {
  const DynamicPowerModel m = DynamicPowerModel::scc_calibrated();
  const thermal::Floorplan fp = thermal::Floorplan::scc(1, 1);
  const auto& comp = fp.component(0);
  EXPECT_THROW(m.component_power_w(comp, 1.5, 1.0, 1.0), precondition_error);
  EXPECT_THROW(m.component_power_w(comp, 0.5, -1.0, 1.0),
               precondition_error);
}

// ------------------------------------------------------------- breakdown
TEST(Breakdown, BucketsSumCorrectly) {
  PowerBreakdown p;
  p.dynamic_w = 100;
  p.leakage_w = 20;
  p.tec_w = 3;
  p.fan_w = 14;
  EXPECT_DOUBLE_EQ(p.chip_w(), 120);
  EXPECT_DOUBLE_EQ(p.cooling_w(), 17);
  EXPECT_DOUBLE_EQ(p.total_w(), 137);
  PowerBreakdown q = p;
  q += p;
  EXPECT_DOUBLE_EQ(q.total_w(), 274);
}

}  // namespace
}  // namespace tecfan::power
