#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "thermal/floorplan.h"
#include "thermal/network.h"
#include "thermal/package.h"
#include "thermal/solvers.h"
#include "thermal/tec_device.h"
#include "util/error.h"
#include "util/stats.h"
#include "util/units.h"

namespace tecfan::thermal {
namespace {

std::shared_ptr<const ChipThermalModel> small_model() {
  static auto model = std::make_shared<const ChipThermalModel>(
      Floorplan::scc(2, 2), PackageParameters{}, TecParameters{});
  return model;
}

std::shared_ptr<const ChipThermalModel> full_model() {
  static auto model = std::make_shared<const ChipThermalModel>(
      Floorplan::scc(4, 4), PackageParameters{}, TecParameters{});
  return model;
}

// One engine per model/dt combination the solver tests need; solvers built
// on them are cheap per-test workspaces.
std::shared_ptr<const ThermalEngine> small_engine(double dt_s = 0.0) {
  return make_thermal_engine(small_model(), dt_s);
}

linalg::Vector uniform_power(const ChipThermalModel& m, double watts) {
  return linalg::Vector(m.component_count(), watts);
}

// ------------------------------------------------------------- floorplan
TEST(Floorplan, SccDimensionsMatchPaper) {
  const Floorplan fp = Floorplan::scc();
  EXPECT_EQ(fp.core_count(), 16);
  EXPECT_EQ(fp.component_count(), 16u * kComponentsPerTile);
  EXPECT_NEAR(fp.chip_width(), 10.4e-3, 1e-9);   // 4 x 2.6 mm
  EXPECT_NEAR(fp.chip_height(), 14.4e-3, 1e-9);  // 4 x 3.6 mm
}

TEST(Floorplan, ComponentsTileEachCoreExactly) {
  const Floorplan fp = Floorplan::scc();
  for (int core = 0; core < fp.core_count(); ++core) {
    double area = 0.0;
    for (std::size_t c : fp.components_of_core(core))
      area += fp.component(c).rect.area();
    EXPECT_NEAR(area, fp.tile_width() * fp.tile_height(), 1e-12);
  }
}

TEST(Floorplan, NoComponentOverlaps) {
  const Floorplan fp = Floorplan::scc(2, 2);
  for (std::size_t i = 0; i < fp.component_count(); ++i)
    for (std::size_t j = i + 1; j < fp.component_count(); ++j)
      EXPECT_LE(intersection_area(fp.component(i).rect, fp.component(j).rect),
                1e-15)
          << fp.component(i).name() << " overlaps " << fp.component(j).name();
}

TEST(Floorplan, VoltageRegulatorAreaMatchesPaper) {
  const Floorplan fp = Floorplan::scc();
  const auto& vr = fp.component(fp.index_of(0, ComponentKind::kVoltReg));
  EXPECT_NEAR(vr.rect.area(), 2.2e-6, 1e-9);  // 2.2 mm^2 (Sec. IV-A)
}

TEST(Floorplan, EighteenDistinctKindsPerTile) {
  const Floorplan fp = Floorplan::scc(1, 1);
  std::vector<bool> seen(kComponentsPerTile, false);
  for (const auto& c : fp.components()) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(c.kind)]);
    seen[static_cast<std::size_t>(c.kind)] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Floorplan, AdjacencySymmetricAndPositive) {
  const Floorplan fp = Floorplan::scc(2, 2);
  for (const auto& adj : fp.adjacency()) {
    EXPECT_LT(adj.a, adj.b);
    EXPECT_GT(adj.edge_m, 0.0);
    EXPECT_DOUBLE_EQ(
        shared_edge_length(fp.component(adj.a).rect, fp.component(adj.b).rect),
        shared_edge_length(fp.component(adj.b).rect,
                           fp.component(adj.a).rect));
  }
}

TEST(Floorplan, CrossTileAdjacencyExists) {
  const Floorplan fp = Floorplan::scc(2, 1);
  bool cross = false;
  for (const auto& adj : fp.adjacency())
    if (fp.component(adj.a).core != fp.component(adj.b).core) cross = true;
  EXPECT_TRUE(cross);
}

TEST(Floorplan, IndexOfRoundTrips) {
  const Floorplan fp = Floorplan::scc();
  for (int core : {0, 7, 15}) {
    const std::size_t i = fp.index_of(core, ComponentKind::kFpMul);
    EXPECT_EQ(fp.component(i).core, core);
    EXPECT_EQ(fp.component(i).kind, ComponentKind::kFpMul);
  }
  EXPECT_THROW(fp.index_of(16, ComponentKind::kL2), precondition_error);
}

TEST(Rect, IntersectionAndSharedEdge) {
  const Rect a{0, 0, 2, 2};
  const Rect b{1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(intersection_area(a, b), 1.0);
  const Rect c{2, 0, 1, 1};
  EXPECT_DOUBLE_EQ(intersection_area(a, c), 0.0);
  EXPECT_DOUBLE_EQ(shared_edge_length(a, c), 1.0);
  const Rect corner{2, 2, 1, 1};
  EXPECT_DOUBLE_EQ(shared_edge_length(a, corner), 0.0);
}

// ------------------------------------------------------------------ tec
TEST(TecDevice, GridPlacementInsideCoverageRegion) {
  const TecParameters tec;
  const Rect tile{0, 0, 2.6e-3, 3.6e-3};
  for (int d = 0; d < tec.devices_per_tile(); ++d) {
    const Rect r = tec.device_rect(tile, d);
    EXPECT_GE(r.x, tile.x - 1e-12);
    EXPECT_LE(r.x1(), tile.x + tec.coverage_region.x1() + 1e-9);
    EXPECT_NEAR(r.area(), tec.device_w_m * tec.device_h_m, 1e-15);
  }
  EXPECT_THROW(tec.device_rect(tile, 9), precondition_error);
}

TEST(TecDevice, DevicesDoNotOverlapEachOther) {
  const TecParameters tec;
  const Rect tile{0, 0, 2.6e-3, 3.6e-3};
  for (int i = 0; i < 9; ++i)
    for (int j = i + 1; j < 9; ++j)
      EXPECT_LE(intersection_area(tec.device_rect(tile, i),
                                  tec.device_rect(tile, j)),
                1e-15);
}

TEST(TecDevice, ElectricalPowerFollowsEq9) {
  TecParameters tec;
  tec.resistance_ohm = 2e-3;
  tec.seebeck_v_per_k = 5e-4;
  tec.drive_current_a = 6.0;
  // Eq. (9): P = r I^2 + alpha I dTheta.
  EXPECT_NEAR(tec.electrical_power_w(0.0), 2e-3 * 36, 1e-12);
  EXPECT_NEAR(tec.electrical_power_w(10.0), 2e-3 * 36 + 5e-4 * 6 * 10, 1e-12);
}

TEST(Package, ConvectionMonotoneInAirflow) {
  const PackageParameters pkg;
  double prev = pkg.convection_g_total(0.0);
  EXPECT_DOUBLE_EQ(prev, pkg.convection_fixed_g_w_per_k);
  for (double cfm : {10.0, 20.0, 40.0, 60.0}) {
    const double g = pkg.convection_g_total(cfm);
    EXPECT_GT(g, prev);
    prev = g;
  }
  EXPECT_THROW(pkg.convection_g_total(-1.0), precondition_error);
}

// --------------------------------------------------------------- network
TEST(Network, NodeLayoutIsConsistent) {
  const auto& m = *small_model();
  EXPECT_EQ(m.tec_count(), 4u * 9u);
  EXPECT_EQ(m.node_count(),
            m.component_count() + 2 * m.tec_count() + 2 * m.tile_count());
  EXPECT_EQ(m.die_node(5), 5u);
  EXPECT_LT(m.tec_cold_node(0), m.tec_hot_node(0));
  EXPECT_LT(m.tec_hot_node(m.tec_count() - 1), m.spreader_node(0));
  EXPECT_EQ(m.sink_node(m.tile_count() - 1), m.node_count() - 1);
}

TEST(Network, BaseConductanceSymmetricWithPositiveDiagonal) {
  const auto& m = *small_model();
  const auto& g = m.base_conductance();
  EXPECT_LT(g.asymmetry(), 1e-14);
  const auto diag = g.diagonal();
  for (double d : diag) EXPECT_GT(d, 0.0);
}

TEST(Network, RowSumsEqualBoundaryConductance) {
  // G * 1 should be zero except on sink rows (ambient link).
  const auto& m = *small_model();
  const auto& g = m.base_conductance();
  linalg::Vector ones(m.node_count(), 1.0);
  linalg::Vector y(m.node_count());
  g.matvec(ones, y);
  const double g_fixed_per_tile =
      m.package().convection_fixed_g_w_per_k / m.tile_count();
  for (std::size_t i = 0; i < m.node_count(); ++i) {
    bool is_sink = false;
    for (std::size_t t = 0; t < m.tile_count(); ++t)
      if (m.sink_node(t) == i) is_sink = true;
    if (is_sink)
      EXPECT_NEAR(y[i], g_fixed_per_tile, 1e-10);
    else
      EXPECT_NEAR(y[i], 0.0, 1e-10) << "node " << i;
  }
}

TEST(Network, EveryTecCoversLogicComponents) {
  const auto& m = *small_model();
  for (std::size_t t = 0; t < m.tec_count(); ++t) {
    const auto& fp = m.tec_footprint(t);
    EXPECT_FALSE(fp.empty());
    double area = 0.0;
    for (const auto& [c, a] : fp) {
      EXPECT_TRUE(is_logic_block(m.floorplan().component(c).kind));
      area += a;
    }
    EXPECT_NEAR(area, m.tec().device_w_m * m.tec().device_h_m, 1e-12);
  }
}

TEST(Network, UncoveredComponentsHaveNoTecs) {
  const auto& m = *small_model();
  const auto& fp = m.floorplan();
  EXPECT_TRUE(m.tecs_over(fp.index_of(0, ComponentKind::kL2)).empty());
  EXPECT_TRUE(m.tecs_over(fp.index_of(0, ComponentKind::kRouter)).empty());
  EXPECT_FALSE(m.tecs_over(fp.index_of(0, ComponentKind::kFpMul)).empty());
}

TEST(Network, DiagonalUpdatesMatchActiveDevices) {
  const auto& m = *small_model();
  CoolingState s = m.make_cooling_state(30.0);
  s.tec_on[3] = 1;
  s.tec_on[7] = 1;
  const auto updates = m.diagonal_updates(s);
  // 2 entries per active TEC + one per sink node for the airflow.
  EXPECT_EQ(updates.size(), 2u * 2u + m.tile_count());
  const double pump = m.tec().pumping_w_per_k();
  double pump_sum = 0.0;
  for (const auto& [node, delta] : updates) pump_sum += delta;
  // Peltier terms cancel pairwise; what remains is the airflow delta.
  const double expected_airflow =
      m.package().convection_g_total(30.0) -
      m.package().convection_fixed_g_w_per_k;
  EXPECT_NEAR(pump_sum, expected_airflow, 1e-12);
  (void)pump;
}

TEST(Network, RhsAccountsForAllSources) {
  const auto& m = *small_model();
  CoolingState s = m.make_cooling_state(30.0);
  s.tec_on[0] = 1;
  linalg::Vector p = uniform_power(m, 0.25);
  const linalg::Vector q = m.assemble_rhs(p, s);
  double total = 0.0;
  for (double v : q) total += v;
  const double expected = 0.25 * m.component_count() +
                          2 * m.tec().joule_per_face_w() +
                          m.package().convection_g_total(30.0) * m.ambient_k();
  EXPECT_NEAR(total, expected, 1e-9);
}

TEST(Network, CapacitancesPositiveAndSinkDominant) {
  const auto& m = *small_model();
  const auto& c = m.capacitance();
  for (double v : c) EXPECT_GT(v, 0.0);
  double sink_total = 0.0;
  for (std::size_t t = 0; t < m.tile_count(); ++t)
    sink_total += c[m.sink_node(t)];
  EXPECT_NEAR(sink_total, m.package().sink_capacitance_total_j_per_k, 1e-9);
  // Die nodes must be far faster than the sink (the paper's two-level
  // time-scale argument).
  const auto& tau = m.node_tau();
  double max_die_tau = 0.0;
  for (std::size_t i = 0; i < m.component_count(); ++i)
    max_die_tau = std::max(max_die_tau, tau[i]);
  EXPECT_LT(max_die_tau, 0.05);
  EXPECT_GT(tau[m.sink_node(0)], 5.0);
}

// --------------------------------------------------------------- solvers
TEST(SteadySolver, ZeroPowerGivesAmbientEverywhere) {
  SteadyStateSolver solver(small_engine());
  const auto& m = *small_model();
  const auto t = solver.solve(uniform_power(m, 0.0), m.make_cooling_state());
  for (double v : t) EXPECT_NEAR(v, m.ambient_k(), 1e-6);
}

TEST(SteadySolver, EnergyConservation) {
  // Total heat in == total heat out through convection.
  SteadyStateSolver solver(small_engine());
  const auto& m = *small_model();
  const double p_comp = 0.4;
  const CoolingState s = m.make_cooling_state(40.0);
  const auto t = solver.solve(uniform_power(m, p_comp), s);
  const double g_conv_per_tile =
      m.package().convection_g_total(40.0) / m.tile_count();
  double heat_out = 0.0;
  for (std::size_t tile = 0; tile < m.tile_count(); ++tile)
    heat_out += g_conv_per_tile * (t[m.sink_node(tile)] - m.ambient_k());
  EXPECT_NEAR(heat_out, p_comp * m.component_count(),
              1e-6 * p_comp * m.component_count());
}

TEST(SteadySolver, LinearSuperpositionWithoutTecs) {
  SteadyStateSolver solver(small_engine());
  const auto& m = *small_model();
  const CoolingState s = m.make_cooling_state(40.0);
  const auto t1 = solver.solve(uniform_power(m, 0.2), s);
  const auto t2 = solver.solve(uniform_power(m, 0.4), s);
  // T(2P) - amb == 2 (T(P) - amb) by linearity.
  for (std::size_t i = 0; i < t1.size(); i += 17)
    EXPECT_NEAR(t2[i] - m.ambient_k(), 2.0 * (t1[i] - m.ambient_k()), 1e-6);
}

TEST(SteadySolver, MoreAirflowIsCooler) {
  SteadyStateSolver solver(small_engine());
  const auto& m = *small_model();
  const auto p = uniform_power(m, 0.4);
  double prev_peak = 1e9;
  for (double cfm : {10.0, 25.0, 45.0, 60.0}) {
    const auto t = solver.solve(p, m.make_cooling_state(cfm));
    const double peak = *std::max_element(t.begin(), t.end());
    EXPECT_LT(peak, prev_peak);
    prev_peak = peak;
  }
}

TEST(SteadySolver, HeatedComponentIsLocallyHottest) {
  SteadyStateSolver solver(small_engine());
  const auto& m = *small_model();
  linalg::Vector p = uniform_power(m, 0.05);
  const std::size_t hot = m.floorplan().index_of(1, ComponentKind::kFpMul);
  p[hot] = 1.5;
  const auto t = solver.solve(p, m.make_cooling_state(40.0));
  for (std::size_t c = 0; c < m.component_count(); ++c) {
    if (c != hot) {
      EXPECT_GT(t[m.die_node(hot)], t[m.die_node(c)]);
    }
  }
}

TEST(SteadySolver, TecOnCoolsItsColdFaceAndHotSpot) {
  SteadyStateSolver solver(small_engine());
  const auto& m = *small_model();
  linalg::Vector p = uniform_power(m, 0.2);
  const std::size_t hot = m.floorplan().index_of(0, ComponentKind::kFpMul);
  p[hot] = 1.0;
  const CoolingState off = m.make_cooling_state(40.0);
  const auto t_off = solver.solve(p, off);
  CoolingState on = off;
  const std::size_t dev = m.tecs_over(hot)[0];
  on.tec_on[dev] = 1;
  const auto t_on = solver.solve(p, on);
  // Cold face and the component under it get colder; hot face gets hotter.
  EXPECT_LT(t_on[m.tec_cold_node(dev)], t_off[m.tec_cold_node(dev)] - 0.5);
  EXPECT_LT(t_on[m.die_node(hot)], t_off[m.die_node(hot)] - 0.5);
  EXPECT_GT(t_on[m.tec_hot_node(dev)], t_off[m.tec_hot_node(dev)]);
}

TEST(SteadySolver, TecReliefSaturates) {
  // Doubling the device count engaged near one spot must yield less than
  // double the relief (back-conduction saturation).
  SteadyStateSolver solver(small_engine());
  const auto& m = *small_model();
  linalg::Vector p = uniform_power(m, 0.2);
  const std::size_t hot = m.floorplan().index_of(0, ComponentKind::kFpMul);
  p[hot] = 1.0;
  const auto base = solver.solve(p, m.make_cooling_state(40.0));

  CoolingState one = m.make_cooling_state(40.0);
  one.tec_on[m.tecs_over(hot)[0]] = 1;
  const auto t1 = solver.solve(p, one);

  CoolingState all = m.make_cooling_state(40.0);
  for (std::size_t t = 0; t < 9; ++t) all.tec_on[t] = 1;  // whole tile 0
  const auto t9 = solver.solve(p, all);

  const double relief1 = base[hot] - t1[hot];
  const double relief9 = base[hot] - t9[hot];
  EXPECT_GT(relief1, 0.5);
  EXPECT_GT(relief9, relief1);
  EXPECT_LT(relief9, 9.0 * relief1);
}

TEST(SteadySolver, TecElectricalPowerPositiveWhenPumping) {
  SteadyStateSolver solver(small_engine());
  const auto& m = *small_model();
  linalg::Vector p = uniform_power(m, 0.3);
  CoolingState s = m.make_cooling_state(40.0);
  s.tec_on[0] = 1;
  const auto t = solver.solve(p, s);
  const double w = m.tec_electrical_power(t, 0, true);
  EXPECT_GT(w, m.tec().joule_per_face_w());  // at least the Joule part
  EXPECT_LT(w, 2.0);                         // sane magnitude
  EXPECT_DOUBLE_EQ(m.tec_electrical_power(t, 1, false), 0.0);
  EXPECT_NEAR(m.total_tec_power(t, s), w, 1e-12);
}

TEST(TransientSolver, ConvergesToSteadyState) {
  const auto engine = small_engine(0.5e-3);
  SteadyStateSolver steady(engine);
  TransientSolver transient(engine);
  const auto& m = engine->model();
  const auto p = uniform_power(m, 0.3);
  const CoolingState s = m.make_cooling_state(40.0);
  const auto ts = steady.solve(p, s);
  linalg::Vector t(m.node_count(), m.ambient_k());
  // March 20 simulated minutes (sink tau ~ 30 s) with big implicit steps;
  // implicit Euler's fixed point is exactly the steady solution.
  TransientSolver coarse(small_engine(2.0));
  for (int i = 0; i < 600; ++i) t = coarse.step(t, p, s);
  EXPECT_LT(max_abs_diff(t, ts), 0.05);
}

TEST(TransientSolver, MonotoneApproachFromCold) {
  TransientSolver transient(small_engine(1e-3));
  const auto& m = *small_model();
  const auto p = uniform_power(m, 0.3);
  const CoolingState s = m.make_cooling_state(40.0);
  linalg::Vector t(m.node_count(), m.ambient_k());
  double prev_peak = 0.0;
  for (int i = 0; i < 20; ++i) {
    t = transient.step(t, p, s);
    const double peak = *std::max_element(t.begin(), t.end());
    EXPECT_GE(peak, prev_peak - 1e-9);
    prev_peak = peak;
  }
}

TEST(TransientSolver, DieRespondsWithinMilliseconds) {
  const auto engine = small_engine(0.5e-3);
  TransientSolver transient(engine);
  const auto& m = engine->model();
  SteadyStateSolver steady(engine);
  const auto p = uniform_power(m, 0.4);
  const CoolingState s = m.make_cooling_state(40.0);
  const auto ts = steady.solve(p, s);
  linalg::Vector t = ts;
  // Step up die power; die nodes should move most of the way to their new
  // local quasi-steady point within a 2 ms control interval while the sink
  // barely moves.
  linalg::Vector p2 = p;
  for (auto& v : p2) v *= 1.5;
  const auto t_after = transient.advance(t, p2, s, 2e-3);
  const std::size_t die = m.die_node(0);
  const std::size_t sink = m.sink_node(0);
  EXPECT_GT(t_after[die] - ts[die], 0.5);
  EXPECT_LT(t_after[sink] - ts[sink], 0.05);
}

TEST(TransientSolver, AdvanceMatchesRepeatedSteps) {
  const auto engine = small_engine(1e-3);
  TransientSolver a(engine), b(engine);
  const auto& m = engine->model();
  const auto p = uniform_power(m, 0.25);
  const CoolingState s = m.make_cooling_state(20.0);
  linalg::Vector t1(m.node_count(), m.ambient_k());
  linalg::Vector t2 = t1;
  t1 = a.advance(std::move(t1), p, s, 4e-3);
  for (int i = 0; i < 4; ++i) t2 = b.step(t2, p, s);
  EXPECT_LT(max_abs_diff(t1, t2), 1e-10);
}

TEST(ExponentialStep, InterpolatesBetweenStates) {
  const auto& m = *small_model();
  linalg::Vector steady(m.node_count(), 350.0);
  linalg::Vector prev(m.node_count(), 320.0);
  // dt = 0 keeps the previous value; dt -> inf reaches steady.
  const auto t0 = exponential_step(m, steady, prev, 0.0);
  EXPECT_LT(max_abs_diff(t0, prev), 1e-12);
  const auto tinf = exponential_step(m, steady, prev, 1e6);
  EXPECT_LT(max_abs_diff(tinf, steady), 1e-6);
  // Intermediate dt lies strictly between.
  const auto tmid = exponential_step(m, steady, prev, 1e-3);
  for (std::size_t i = 0; i < tmid.size(); i += 31) {
    EXPECT_GE(tmid[i], 320.0 - 1e-12);
    EXPECT_LE(tmid[i], 350.0 + 1e-12);
  }
}

TEST(ExponentialStep, TracksTransientSolverForDieNodes) {
  // Eq. (5) is the controller's approximation of the implicit-Euler plant;
  // over one control interval the die-node error should be small (< 1 K).
  const auto engine = small_engine(0.5e-3);
  SteadyStateSolver steady(engine);
  TransientSolver plant(engine);
  const auto& m = engine->model();
  linalg::Vector p = uniform_power(m, 0.3);
  const CoolingState s = m.make_cooling_state(40.0);
  linalg::Vector t0 = steady.solve(p, s);
  // Perturb power by ~a program-phase swing and compare one 2 ms interval.
  for (auto& v : p) v *= 1.1;
  const auto ts = steady.solve(p, s);
  const auto t_est = exponential_step(m, ts, t0, 2e-3);
  const auto t_plant = plant.advance(t0, p, s, 2e-3);
  // The residual Eq.(5)-vs-plant error is the controller bias that causes
  // the paper's (and our) small runtime violations; for a ~10% power swing
  // it stays within ~1.5 K (the estimator credits the spreader with its
  // full steady-state rise, which the plant reaches only slowly).
  for (std::size_t c = 0; c < m.component_count(); c += 7)
    EXPECT_NEAR(t_est[m.die_node(c)], t_plant[m.die_node(c)], 1.5);
}

TEST(ThermalEngine, StatesItsConfiguration) {
  const auto steady_only = small_engine();
  EXPECT_FALSE(steady_only->has_transient());
  EXPECT_GT(steady_only->memory_bytes(), 0u);
  const auto both = small_engine(1e-3);
  EXPECT_TRUE(both->has_transient());
  EXPECT_DOUBLE_EQ(both->transient_dt_s(), 1e-3);
  // The transient factorization roughly doubles the engine's footprint.
  EXPECT_GT(both->memory_bytes(), steady_only->memory_bytes());
}

TEST(ThermalEngine, PreconditionsAreEnforced) {
  EXPECT_THROW(make_thermal_engine(nullptr), precondition_error);
  EXPECT_THROW(TransientSolver{small_engine()}, precondition_error);
  EXPECT_THROW(SteadyStateSolver{nullptr}, precondition_error);
}

TEST(ThermalEngine, DefaultBackendIsBandedForChipModels) {
  // kAuto must land on the permuted-band path for the 16-core chip — the
  // configuration every benchmark number describes. (The 2x2 test model is
  // small enough that the cost model correctly keeps it dense.)
  const auto engine = make_thermal_engine(full_model());
  EXPECT_TRUE(engine->banded());
  EXPECT_GT(engine->bandwidth(), 0u);
  EXPECT_LT(3 * engine->bandwidth(), full_model()->node_count());
  EXPECT_FALSE(
      make_thermal_engine(full_model(), 0.0, linalg::SolveBackend::kDense)
          ->banded());
}

// The acceptance gate for the banded default: dense and banded engines
// must agree within 1e-9 K on the full 16-core model across a sweep of
// airflow levels and TEC patterns, for steady-state solves and transient
// steps alike.
TEST(BackendEquivalence, EnginesAgreeAcrossKnobSweep) {
  const double dt = 5e-4;
  const auto dense =
      make_thermal_engine(full_model(), dt, linalg::SolveBackend::kDense);
  const auto banded =
      make_thermal_engine(full_model(), dt, linalg::SolveBackend::kBanded);
  ASSERT_FALSE(dense->banded());
  ASSERT_TRUE(banded->banded());
  const auto& m = *full_model();
  SteadyStateSolver steady_dense(dense);
  SteadyStateSolver steady_banded(banded);
  TransientSolver plant_dense(dense);
  TransientSolver plant_banded(banded);
  const linalg::Vector power = uniform_power(m, 0.4);

  for (const double airflow : {0.0, 25.0, 60.0}) {
    for (int pattern = 0; pattern < 3; ++pattern) {
      CoolingState state = m.make_cooling_state(airflow);
      for (std::size_t t = 0; t < state.tec_on.size(); ++t)
        state.tec_on[t] =
            pattern == 0 ? 0 : (pattern == 1 ? 1 : (t % 3 == 0 ? 1 : 0));
      const auto xd = steady_dense.solve(power, state);
      const auto xb = steady_banded.solve(power, state);
      EXPECT_LT(max_abs_diff(xd, xb), 1e-9)
          << "steady airflow=" << airflow << " pattern=" << pattern;
      const auto yd = plant_dense.step(xd, power, state);
      const auto yb = plant_banded.step(xb, power, state);
      EXPECT_LT(max_abs_diff(yd, yb), 1e-9)
          << "transient airflow=" << airflow << " pattern=" << pattern;
    }
  }
}

TEST(FullModel, SteadySolveSaneTemperatures) {
  SteadyStateSolver solver(make_thermal_engine(full_model()));
  const auto& m = *full_model();
  // ~125 W chip in the base cooling configuration.
  const double per_comp = 125.0 / m.component_count();
  const auto t = solver.solve(uniform_power(m, per_comp),
                              m.make_cooling_state(60.0));
  const double peak = *std::max_element(t.begin(), t.end());
  const double low = *std::min_element(t.begin(), t.end());
  EXPECT_GT(low, m.ambient_k());
  EXPECT_GT(peak, celsius_to_kelvin(60.0));
  EXPECT_LT(peak, celsius_to_kelvin(110.0));
}

}  // namespace
}  // namespace tecfan::thermal
