// Tests for the tecfand service layer: protocol parse/serialize, the
// sharded LRU result cache, worker-pool backpressure and shutdown, and an
// end-to-end pipe-mode session asserting a repeated equilibrium request is
// served from the cache without re-solving.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <clocale>
#include <condition_variable>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/metrics.h"
#include "util/rng.h"

#include "service/fault_injection.h"
#include "service/framing.h"
#include "service/request.h"
#include "service/result_cache.h"
#include "service/server.h"
#include "service/task_queue.h"
#include "service/worker_pool.h"

namespace {

using namespace tecfan::service;
using namespace std::chrono_literals;

// ---------------------------------------------------------------- protocol

TEST(Protocol, ParseFillsDefaults) {
  const ParsedRequest p = parse_request("equilibrium");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.request.kind, RequestKind::kEquilibrium);
  EXPECT_EQ(p.request.workload, "cholesky");
  EXPECT_EQ(p.request.threads, 16);
  EXPECT_EQ(p.request.fan, 0);
  EXPECT_EQ(p.request.dvfs, 0);
  EXPECT_FALSE(p.request.tec_on);
  EXPECT_EQ(p.request.deadline_ms, 0.0);
}

TEST(Protocol, ParseReadsEveryField) {
  const ParsedRequest p = parse_request(
      "equilibrium workload=LU threads=4 fan=3 dvfs=2 tec=on deadline_ms=50");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.request.workload, "lu");  // names are lower-cased
  EXPECT_EQ(p.request.threads, 4);
  EXPECT_EQ(p.request.fan, 3);
  EXPECT_EQ(p.request.dvfs, 2);
  EXPECT_TRUE(p.request.tec_on);
  EXPECT_DOUBLE_EQ(p.request.deadline_ms, 50.0);
}

TEST(Protocol, CanonicalKeyIsOrderAndCaseIndependent) {
  const ParsedRequest a =
      parse_request("equilibrium workload=cholesky fan=2 threads=16 tec=off");
  const ParsedRequest b =
      parse_request("EQUILIBRIUM tec=false THREADS=16 FAN=2 Workload=CHOLESKY");
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(canonical_key(a.request), canonical_key(b.request));
}

TEST(Protocol, CanonicalKeyExcludesDeadline) {
  ParsedRequest a = parse_request("run policy=tecfan workload=lu fan=1");
  ParsedRequest b =
      parse_request("run policy=tecfan workload=lu fan=1 deadline_ms=25");
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(canonical_key(a.request), canonical_key(b.request));
}

TEST(Protocol, TraceFieldParsesAndStaysOutOfTheKey) {
  const ParsedRequest with = parse_request(
      "equilibrium workload=water threads=4 fan=1 trace=deadbeef-1f");
  ASSERT_TRUE(with.ok) << with.error;
  EXPECT_TRUE(with.request.trace.sampled);
  EXPECT_EQ(with.request.trace.trace_id, 0xdeadbeefULL);
  EXPECT_EQ(with.request.trace.parent_span_id, 0x1fULL);
  const ParsedRequest without =
      parse_request("equilibrium workload=water threads=4 fan=1");
  ASSERT_TRUE(without.ok);
  EXPECT_FALSE(without.request.trace.sampled);
  // Trace context is per-request plumbing, not identity: the keys must
  // collide so a traced request can hit an entry cached untraced.
  EXPECT_EQ(canonical_key(with.request), canonical_key(without.request));
}

TEST(Protocol, MalformedTraceContextIsARequestError) {
  for (const char* line :
       {"equilibrium trace=", "equilibrium trace=12",
        "equilibrium trace=zz-1f", "equilibrium trace=12-",
        "equilibrium trace=0-1f"}) {
    const ParsedRequest p = parse_request(line);
    EXPECT_FALSE(p.ok) << line;
    if (!p.ok) {
      EXPECT_NE(p.error.find("bad trace"), std::string::npos) << line;
    }
  }
}

TEST(Protocol, TraceVerbParsesItsLimit) {
  const ParsedRequest p = parse_request("trace limit=3");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.request.kind, RequestKind::kTrace);
  EXPECT_EQ(p.request.trace_limit, 3);
  EXPECT_FALSE(parse_request("trace limit=0").ok);
  EXPECT_FALSE(parse_request("trace limit=banana").ok);
}

TEST(Protocol, CanonicalKeyRoundTrips) {
  for (const char* line :
       {"equilibrium workload=fmm threads=16 fan=4 dvfs=1 tec=on",
        "run policy=fan+dvfs workload=volrend threads=16 fan=2",
        "sweep policy=tecfan workload=water threads=4",
        "table1 workload=cholesky threads=16"}) {
    const ParsedRequest p = parse_request(line);
    ASSERT_TRUE(p.ok) << line << ": " << p.error;
    const std::string key = canonical_key(p.request);
    const ParsedRequest again = parse_request(key);
    ASSERT_TRUE(again.ok) << key << ": " << again.error;
    EXPECT_EQ(canonical_key(again.request), key) << line;
  }
}

// Property test: for any valid compute request, the canonical key is a
// fixed point — parsing it reproduces the request, and canonicalizing the
// reparse reproduces the key byte-for-byte. Exercised over randomized
// requests including names that need the quoting path.
TEST(Protocol, CanonicalKeyRoundTripsOverRandomizedRequests) {
  tecfan::Rng rng(20260808);
  const RequestKind kinds[] = {RequestKind::kEquilibrium, RequestKind::kRun,
                               RequestKind::kSweep, RequestKind::kTable1};
  // Plain names plus ones whose canonical form must be quoted/escaped.
  const char* names[] = {"cholesky",    "LU",           "Water",
                         "two words",   "a\"quote",     "back\\slash",
                         " lead-space", "tab\there",    "fmm"};
  for (int trial = 0; trial < 500; ++trial) {
    Request r;
    r.kind = kinds[rng.below(4)];
    r.workload = names[rng.below(sizeof(names) / sizeof(names[0]))];
    r.policy = names[rng.below(sizeof(names) / sizeof(names[0]))];
    r.threads = 1 + static_cast<int>(rng.below(64));
    r.fan = static_cast<int>(rng.below(16));
    r.dvfs = static_cast<int>(rng.below(8));
    r.tec_on = rng.below(2) == 1;
    r.deadline_ms = 0.0;  // excluded from the key by contract

    const std::string key = canonical_key(r);
    const ParsedRequest back = parse_request(key);
    ASSERT_TRUE(back.ok) << "key not parseable: " << key << ": "
                         << back.error;
    EXPECT_EQ(back.request.kind, r.kind) << key;
    EXPECT_EQ(canonical_key(back.request), key) << "trial " << trial;
    // The key is canonical: the round-tripped request carries the
    // lower-cased names the key itself shows.
    EXPECT_EQ(back.request.workload,
              [&r] {
                std::string w = r.workload;
                for (auto& ch : w)
                  ch = static_cast<char>(
                      std::tolower(static_cast<unsigned char>(ch)));
                return w;
              }())
        << key;
  }
}

// Every kind rejects exactly the keys outside its schema; deadline_ms is
// the one cross-cutting key every kind accepts.
TEST(Protocol, EachKindRejectsForeignKeys) {
  const struct {
    const char* kind;
    std::vector<std::string> allowed;
  } kinds[] = {
      {"equilibrium", {"workload", "threads", "fan", "dvfs", "tec"}},
      {"run", {"policy", "workload", "threads", "fan"}},
      {"sweep", {"policy", "workload", "threads"}},
      {"table1", {"workload", "threads"}},
      {"ping", {}},
      {"stats", {}},
      {"metrics", {}},
      {"quit", {}},
  };
  const std::vector<std::pair<std::string, std::string>> all_keys = {
      {"workload", "lu"}, {"threads", "4"}, {"policy", "tecfan"},
      {"fan", "1"},       {"dvfs", "1"},    {"tec", "on"},
  };
  for (const auto& k : kinds) {
    for (const auto& [key, value] : all_keys) {
      const std::string line = std::string(k.kind) + " " + key + "=" + value;
      const bool allowed = std::find(k.allowed.begin(), k.allowed.end(),
                                     key) != k.allowed.end();
      const ParsedRequest p = parse_request(line);
      EXPECT_EQ(p.ok, allowed) << line << ": " << p.error;
      if (!allowed) {
        EXPECT_NE(p.error.find("not valid for kind"), std::string::npos)
            << line << ": " << p.error;
      }
    }
    const ParsedRequest with_deadline =
        parse_request(std::string(k.kind) + " deadline_ms=12.5");
    EXPECT_TRUE(with_deadline.ok) << k.kind << ": " << with_deadline.error;
  }
}

TEST(Protocol, RejectsMalformedInput) {
  for (const char* line : {
           "",                              // empty
           "   ",                           // whitespace only
           "bogus",                         // unknown kind
           "workload=lu",                   // key before kind
           "equilibrium fan=abc",           // non-integer level
           "equilibrium fan=-1",            // negative level
           "equilibrium fan=3x",            // trailing junk
           "equilibrium tec=maybe",         // bad boolean
           "equilibrium threads=0",         // non-positive threads
           "equilibrium workload=",         // empty value
           "equilibrium frobnicate=1",      // unknown key for kind
           "run dvfs=1",                    // key not valid for `run`
           "ping extra=1",                  // control kinds take no keys
           "run policy",                    // stray bare token
           "run policy=\"tec",              // unterminated quote
           "equilibrium deadline_ms=-5",    // negative deadline
       }) {
    const ParsedRequest p = parse_request(line);
    EXPECT_FALSE(p.ok) << "accepted: '" << line << "'";
    EXPECT_FALSE(p.error.empty()) << line;
  }
}

TEST(Protocol, MetricsKindParses) {
  const ParsedRequest p = parse_request("metrics");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.request.kind, RequestKind::kMetrics);
  EXPECT_FALSE(p.request.is_compute());
  EXPECT_EQ(kind_name(RequestKind::kMetrics), "metrics");
  // Control kinds take no keys (deadline_ms stays allowed).
  EXPECT_FALSE(parse_request("metrics workload=lu").ok);
  EXPECT_TRUE(parse_request("metrics deadline_ms=5").ok);
}

// Regression: parse_double used locale-dependent std::stod, so under a
// comma-decimal LC_NUMERIC locale "deadline_ms=0.5" stopped parsing at
// the '.' and was rejected. from_chars is locale-independent.
TEST(Protocol, DeadlineParsingIsLocaleIndependent) {
  const char* current = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = current ? current : "C";
  bool switched = false;
  for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
                           "fr_FR.utf8", "de_DE", "fr_FR"}) {
    if (std::setlocale(LC_NUMERIC, name)) {
      switched = true;
      break;
    }
  }
  // The assertions hold with or without a comma-decimal locale installed;
  // with one, they are the actual regression.
  const ParsedRequest p = parse_request("equilibrium deadline_ms=0.5");
  EXPECT_TRUE(p.ok) << p.error << (switched ? " (comma-decimal locale)" : "");
  EXPECT_DOUBLE_EQ(p.request.deadline_ms, 0.5);
  EXPECT_FALSE(parse_request("equilibrium deadline_ms=0,5").ok);
  std::setlocale(LC_NUMERIC, saved.c_str());
}

TEST(Protocol, ResponseRoundTrips) {
  Response r;
  r.add("peak_t_c", 89.25);
  r.add("note", std::string("two words"));
  r.add("tricky", std::string("a \"quoted\" \\ value"));
  const Response back = parse_response(serialize_response(r));
  EXPECT_EQ(back.status, Response::Status::kOk);
  EXPECT_EQ(back.field("peak_t_c"), std::optional<std::string>("89.25"));
  EXPECT_EQ(back.field("note"), std::optional<std::string>("two words"));
  EXPECT_EQ(back.field("tricky"),
            std::optional<std::string>("a \"quoted\" \\ value"));

  const Response cached_back = [] {
    Response c;
    c.cached = true;
    c.add("x", std::uint64_t{7});
    return parse_response(serialize_response(c));
  }();
  EXPECT_TRUE(cached_back.cached);

  const Response err = parse_response(
      serialize_response(Response::make_error("fan level out of range")));
  EXPECT_EQ(err.status, Response::Status::kError);
  EXPECT_EQ(err.error, "fan level out of range");

  EXPECT_EQ(parse_response("busy").status, Response::Status::kBusy);
  EXPECT_EQ(parse_response("???").status, Response::Status::kError);
}

// ------------------------------------------------------------------ cache

TEST(ResultCache, HitMissAndCounters) {
  ResultCache cache(8, 2);
  EXPECT_FALSE(cache.get("a"));
  cache.put("a", "1");
  auto hit = cache.get("a");
  ASSERT_TRUE(hit);
  EXPECT_EQ(*hit, "1");
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.size, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2, 1);  // single shard, two entries
  cache.put("a", "1");
  cache.put("b", "2");
  ASSERT_TRUE(cache.get("a"));  // refresh `a`; `b` is now LRU
  cache.put("c", "3");          // evicts `b`
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.get("b"));
  EXPECT_TRUE(cache.get("a"));
  EXPECT_TRUE(cache.get("c"));
}

TEST(ResultCache, OverwriteDoesNotEvict) {
  ResultCache cache(2, 1);
  cache.put("a", "1");
  cache.put("b", "2");
  cache.put("a", "updated");
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(*cache.get("a"), "updated");
  EXPECT_TRUE(cache.get("b"));
}

TEST(ResultCache, CanonicalizedRequestsShareAnEntry) {
  ResultCache cache(16);
  const ParsedRequest a =
      parse_request("equilibrium fan=1 workload=lu threads=16");
  const ParsedRequest b =
      parse_request("equilibrium threads=16 workload=LU fan=1 deadline_ms=9");
  ASSERT_TRUE(a.ok && b.ok);
  cache.put(canonical_key(a.request), "result");
  auto hit = cache.get(canonical_key(b.request));
  ASSERT_TRUE(hit);
  EXPECT_EQ(*hit, "result");
}

// Regression: stats().capacity reported per_shard_capacity * shards, so
// 1000 entries over 16 shards (ceil -> 63 each) read back as 1008.
TEST(ResultCache, ReportsRequestedCapacityDespiteShardRounding) {
  EXPECT_EQ(ResultCache(1000, 16).stats().capacity, 1000u);
  EXPECT_EQ(ResultCache(10, 4).stats().capacity, 10u);
  EXPECT_EQ(ResultCache(3, 8).stats().capacity, 3u);  // shards clamp to 3
  EXPECT_EQ(ResultCache(4096, 8).stats().capacity, 4096u);
}

TEST(ResultCache, ClearEmptiesEveryShard) {
  ResultCache cache(64, 4);
  for (int i = 0; i < 32; ++i)
    cache.put("key" + std::to_string(i), "v");
  EXPECT_GT(cache.stats().size, 0u);
  cache.clear();
  EXPECT_EQ(cache.stats().size, 0u);
}

// ------------------------------------------------------------- queue/pool

TEST(TaskQueue, BoundedAndClosable) {
  TaskQueue q(2);
  Task t;
  t.run = [] {};
  EXPECT_TRUE(q.try_push(t));
  EXPECT_TRUE(q.try_push(t));
  EXPECT_FALSE(q.try_push(t));  // full
  EXPECT_EQ(q.size(), 2u);
  q.close();
  EXPECT_FALSE(q.try_push(t));  // closed
  EXPECT_TRUE(q.pop());         // drains the backlog first...
  EXPECT_TRUE(q.pop());
  EXPECT_FALSE(q.pop());  // ...then reports closed-and-empty
}

// A simple open/close gate for holding a worker in-flight.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  bool entered = false;

  void wait_open() {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [this] { return open; });
  }
  void wait_entered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return entered; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
    cv.notify_all();
  }
};

TEST(WorkerPool, BackpressureRejectsWhenSaturated) {
  WorkerPool pool(1, 2);
  Gate gate;
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.submit([&] {
    gate.wait_open();
    ++ran;
  }));
  gate.wait_entered();  // worker is busy; queue is empty
  ASSERT_TRUE(pool.submit([&] { ++ran; }));
  ASSERT_TRUE(pool.submit([&] { ++ran; }));
  EXPECT_FALSE(pool.submit([&] { ++ran; }));  // queue full -> busy
  EXPECT_FALSE(pool.submit([&] { ++ran; }));
  EXPECT_EQ(pool.stats().rejected, 2u);
  gate.release();
  pool.shutdown(true);
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(pool.stats().executed, 3u);
}

TEST(WorkerPool, GracefulShutdownDrainsAcceptedWork) {
  std::atomic<int> ran{0};
  {
    WorkerPool pool(2, 16);
    for (int i = 0; i < 8; ++i)
      ASSERT_TRUE(pool.submit([&] {
        std::this_thread::sleep_for(1ms);
        ++ran;
      }));
    pool.shutdown(true);
    EXPECT_EQ(pool.stats().executed, 8u);
  }
  EXPECT_EQ(ran.load(), 8);
}

TEST(WorkerPool, DropShutdownCancelsBacklog) {
  WorkerPool pool(1, 8);
  Gate gate;
  std::atomic<int> ran{0};
  std::atomic<int> cancelled{0};
  ASSERT_TRUE(pool.submit([&] { gate.wait_open(); }));
  gate.wait_entered();
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(pool.submit([&] { ++ran; }, [&] { ++cancelled; }));
  EXPECT_EQ(pool.stats().queued, 4u);

  std::thread stopper([&] { pool.shutdown(false); });
  // The backlog is cancelled synchronously inside shutdown, before the
  // join; the in-flight task is still held at the gate.
  while (pool.stats().expired < 4u) std::this_thread::sleep_for(1ms);
  EXPECT_EQ(cancelled.load(), 4);
  EXPECT_EQ(ran.load(), 0);
  gate.release();
  stopper.join();
}

TEST(WorkerPool, ExpiredDeadlineRunsExpireContinuation) {
  WorkerPool pool(1, 4);
  std::atomic<int> ran{0};
  std::atomic<int> expired{0};
  ASSERT_TRUE(pool.submit([&] { ++ran; }, [&] { ++expired; },
                          std::chrono::steady_clock::now() - 1ms));
  pool.shutdown(true);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(expired.load(), 1);
  EXPECT_EQ(pool.stats().expired, 1u);
}

// Regression: worker_loop incremented `executed` even when run() threw,
// so a crashing task was indistinguishable from a served one.
TEST(WorkerPool, ThrowingTasksCountAsFailedNotExecuted) {
  WorkerPool pool(1, 8);
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.submit([&] { ++ran; }));
  ASSERT_TRUE(pool.submit([] { throw std::runtime_error("task boom"); }));
  ASSERT_TRUE(pool.submit([] { throw 42; }));  // non-std exception path
  ASSERT_TRUE(pool.submit([&] { ++ran; }));
  pool.shutdown(true);
  EXPECT_EQ(ran.load(), 2);
  const auto s = pool.stats();
  EXPECT_EQ(s.executed, 2u);
  EXPECT_EQ(s.failed, 2u);
  EXPECT_EQ(s.expired, 0u);
  EXPECT_EQ(s.rejected, 0u);
}

TEST(WorkerPool, RecordsQueueWaitIntoHistogram) {
  tecfan::LatencyHistogram queue_wait;
  {
    WorkerPool pool(2, 16, &queue_wait);
    std::atomic<int> ran{0};
    for (int i = 0; i < 6; ++i)
      ASSERT_TRUE(pool.submit([&] { ++ran; }));
    pool.shutdown(true);
    EXPECT_EQ(ran.load(), 6);
  }
  // Every dequeued task contributes one sample, expired ones included.
  const auto snap = queue_wait.snapshot();
  EXPECT_EQ(snap.count, 6u);
  EXPECT_GE(snap.max_us, 0.0);
}

// Conservation law: every submit() ends in exactly one of executed /
// failed / expired / rejected — including submits racing a drop shutdown
// (the queue is closed before the backlog sweep, so a late push is
// rejected rather than silently run). Runs under TSan in the tier-1 leg.
TEST(WorkerPool, CountersConserveEverySubmitUnderDropShutdown) {
  for (int round = 0; round < 3; ++round) {
    WorkerPool pool(3, 8);
    std::atomic<std::uint64_t> submits{0};
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 300;
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&pool, &submits, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          auto deadline = std::chrono::steady_clock::time_point::max();
          if (i % 11 == 0)
            deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(1);  // expires in queue
          const bool throws = (p + i) % 149 == 0;
          pool.submit(
              [throws] {
                if (throws) throw std::runtime_error("conservation boom");
              },
              [] {}, deadline);
          submits.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    // Drop-shutdown races the producers on every round.
    std::thread dropper([&pool] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      pool.shutdown(false);
    });
    for (auto& t : producers) t.join();
    dropper.join();
    const auto s = pool.stats();
    EXPECT_EQ(s.executed + s.failed + s.expired + s.rejected, submits.load())
        << "executed=" << s.executed << " failed=" << s.failed
        << " expired=" << s.expired << " rejected=" << s.rejected;
    EXPECT_EQ(s.queued, 0u);
  }
}

// Regression for the drop-shutdown race: shutdown(false) must close the
// queue before cancelling the backlog, so once any expiry has been
// observed no further submit can be accepted (it would have run after
// the cancellation sweep under the old drain-then-close order).
TEST(WorkerPool, DropShutdownClosesQueueBeforeCancelling) {
  WorkerPool pool(1, 8);
  Gate gate;
  std::atomic<int> cancelled{0};
  ASSERT_TRUE(pool.submit([&] { gate.wait_open(); }));
  gate.wait_entered();
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(pool.submit([] {}, [&] { ++cancelled; }));

  std::thread stopper([&] { pool.shutdown(false); });
  while (pool.stats().expired < 3u) std::this_thread::sleep_for(1ms);
  EXPECT_EQ(cancelled.load(), 3);
  // The backlog has been cancelled, so the queue must already be closed.
  EXPECT_FALSE(pool.submit([] {}));
  EXPECT_EQ(pool.stats().rejected, 1u);
  gate.release();
  stopper.join();
}

TEST(WorkerPool, ManyProducersOneConsumerStaysConsistent) {
  WorkerPool pool(2, 64);
  std::atomic<int> ran{0};
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p)
    producers.emplace_back([&] {
      for (int i = 0; i < 64; ++i)
        if (pool.submit([&] { ++ran; })) ++accepted;
    });
  for (auto& t : producers) t.join();
  pool.shutdown(true);
  EXPECT_EQ(ran.load(), accepted.load());
  const auto s = pool.stats();
  EXPECT_EQ(s.executed, static_cast<std::uint64_t>(accepted.load()));
  EXPECT_EQ(s.executed + s.rejected, 256u);
}

// ------------------------------------------------------------- end-to-end

ServerOptions small_server_options() {
  ServerOptions o;
  o.tiles_x = 2;
  o.tiles_y = 2;
  o.workers = 2;
  o.queue_capacity = 8;
  o.cache_capacity = 64;
  o.max_sim_time_s = 0.05;
  return o;
}

TEST(ServerPipe, CachedEquilibriumIsServedWithoutResolving) {
  Server server(small_server_options());
  std::istringstream in(
      "equilibrium workload=water threads=4 fan=1\n"
      "equilibrium threads=4 fan=1 workload=WATER\n"
      "stats\n"
      "quit\n");
  std::ostringstream out;
  server.serve_pipe(in, out);

  std::istringstream lines(out.str());
  std::string l1, l2, l3, l4;
  ASSERT_TRUE(std::getline(lines, l1));
  ASSERT_TRUE(std::getline(lines, l2));
  ASSERT_TRUE(std::getline(lines, l3));
  ASSERT_TRUE(std::getline(lines, l4));

  const Response first = parse_response(l1);
  const Response second = parse_response(l2);
  ASSERT_EQ(first.status, Response::Status::kOk) << l1;
  ASSERT_EQ(second.status, Response::Status::kOk) << l2;
  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(second.cached) << l2;
  EXPECT_EQ(first.field("peak_t_c"), second.field("peak_t_c"));

  // The repeat must not have re-solved: exactly one compute, one hit.
  const Response stats = parse_response(l3);
  EXPECT_EQ(stats.field("computes"), std::optional<std::string>("1"));
  EXPECT_EQ(stats.field("cache_hits"), std::optional<std::string>("1"));

  const Response bye = parse_response(l4);
  EXPECT_EQ(bye.field("bye"), std::optional<std::string>("1"));
}

TEST(ServerPipe, MalformedLinesGetErrorsAndSessionContinues) {
  Server server(small_server_options());
  std::istringstream in(
      "garbage\n"
      "ping\n"
      "quit\n");
  std::ostringstream out;
  server.serve_pipe(in, out);
  std::istringstream lines(out.str());
  std::string l1, l2;
  ASSERT_TRUE(std::getline(lines, l1));
  ASSERT_TRUE(std::getline(lines, l2));
  EXPECT_EQ(parse_response(l1).status, Response::Status::kError);
  EXPECT_EQ(parse_response(l2).field("pong"),
            std::optional<std::string>("1"));
}

TEST(Server, RunRequestProducesMetricsAndCaches) {
  Server server(small_server_options());
  Request req;
  req.kind = RequestKind::kRun;
  req.workload = "water";
  req.threads = 4;
  req.policy = "fan-only";
  req.fan = 1;
  const Response r = server.handle(req);
  ASSERT_EQ(r.status, Response::Status::kOk) << r.error;
  EXPECT_FALSE(r.cached);
  EXPECT_TRUE(r.field("energy_j"));
  EXPECT_TRUE(r.field("time_ms"));
  EXPECT_TRUE(r.field("peak_t_c"));
  const Response again = server.handle(req);
  ASSERT_EQ(again.status, Response::Status::kOk);
  EXPECT_TRUE(again.cached);
  EXPECT_EQ(r.field("energy_j"), again.field("energy_j"));
}

// The serving-path telemetry end to end: a pipe session with a miss, a
// hit and a `metrics` request must produce per-stage histograms whose
// counts match what the session actually did, with the cached path
// reading far below the computed path.
TEST(Server, MetricsVerbReportsStageHistograms) {
  Server server(small_server_options());
  std::istringstream in(
      "equilibrium workload=water threads=4 fan=1\n"
      "equilibrium workload=water threads=4 fan=1\n"
      "metrics\n"
      "stats\n"
      "quit\n");
  std::ostringstream out;
  server.serve_pipe(in, out);

  std::istringstream lines(out.str());
  std::string l1, l2, l3, l4;
  ASSERT_TRUE(std::getline(lines, l1));
  ASSERT_TRUE(std::getline(lines, l2));
  ASSERT_TRUE(std::getline(lines, l3));
  ASSERT_TRUE(std::getline(lines, l4));
  const Response metrics = parse_response(l3);
  ASSERT_EQ(metrics.status, Response::Status::kOk) << l3;

  const auto field_double = [&metrics](const std::string& key) {
    auto v = metrics.field(key);
    EXPECT_TRUE(v) << "missing field " << key;
    return v ? std::stod(*v) : -1.0;
  };
  // 5 lines parsed, 1 compute dispatched through the pool, 2 cache
  // probes (1 miss + 1 hit), every response serialized.
  EXPECT_GE(field_double("parse_count"), 3.0);
  EXPECT_EQ(field_double("cache_probe_count"), 2.0);
  EXPECT_EQ(field_double("queue_wait_count"), 1.0);
  EXPECT_EQ(field_double("compute_count"), 1.0);
  EXPECT_GE(field_double("serialize_count"), 2.0);
  EXPECT_EQ(field_double("e2e_hit_count"), 1.0);
  EXPECT_EQ(field_double("e2e_miss_count"), 1.0);
  // The cached round trip skips the simulator entirely: its end-to-end
  // latency must sit far below the computed one.
  EXPECT_LT(field_double("e2e_hit_p50_us"), field_double("e2e_miss_p50_us"));
  // Percentile extraction is wired through (p50 <= p99 <= max).
  EXPECT_LE(field_double("compute_p50_us"), field_double("compute_p99_us"));
  EXPECT_LE(field_double("compute_p99_us"),
            field_double("compute_max_us") * 1.2);
  // The bucket dump carries the full distribution: `upper_us:count`.
  const auto buckets = metrics.field("compute_buckets");
  ASSERT_TRUE(buckets);
  EXPECT_NE(buckets->find(':'), std::string::npos);
  // Server::metrics() exposes the same registry programmatically.
  bool saw_compute = false;
  for (const auto& [name, snap] : server.metrics().histograms())
    if (name == "compute") {
      saw_compute = true;
      EXPECT_EQ(snap.count, 1u);
    }
  EXPECT_TRUE(saw_compute);

  // stats grew the pool_failed counter (counter audit).
  const Response stats = parse_response(l4);
  ASSERT_EQ(stats.status, Response::Status::kOk) << l4;
  EXPECT_EQ(stats.field("pool_failed"), std::optional<std::string>("0"));
}

// Sum the counts out of a `<stage>_buckets` dump (`upper_us:count,...`).
std::uint64_t sum_bucket_counts(const std::string& buckets) {
  std::uint64_t sum = 0;
  std::size_t pos = 0;
  while (pos < buckets.size()) {
    const std::size_t colon = buckets.find(':', pos);
    if (colon == std::string::npos) break;
    std::size_t end = buckets.find(',', colon);
    if (end == std::string::npos) end = buckets.size();
    sum += std::stoull(buckets.substr(colon + 1, end - colon - 1));
    pos = end + 1;
  }
  return sum;
}

// Regression for the one-snapshot-per-dump contract: a metrics dump must
// render from a single registry snapshot. A dump that re-read the live
// instruments per field could catch a histogram between its bucket
// increment and its sibling loads, letting the bucket sum drift from the
// count; within one snapshot the count is *derived* from the bucket sums,
// so the two must agree exactly on every dump, however hard the
// concurrent load races the reader.
TEST(Server, MetricsSnapshotConsistent) {
  Server server(small_server_options());
  std::atomic<bool> stop{false};
  std::vector<std::thread> load;
  for (int t = 0; t < 3; ++t)
    load.emplace_back([&server, &stop, t] {
      int fan = t;
      while (!stop.load(std::memory_order_relaxed))
        server.handle_line("equilibrium workload=water threads=4 fan=" +
                           std::to_string(fan++ % 5));
    });

  const char* stages[] = {"parse",     "cache_probe", "queue_wait", "compute",
                          "serialize", "e2e_hit",     "e2e_miss"};
  std::map<std::string, std::uint64_t> last_count;
  for (int dump = 0; dump < 25; ++dump) {
    const Response m = parse_response(server.handle_line("metrics"));
    ASSERT_EQ(m.status, Response::Status::kOk);
    for (const char* stage : stages) {
      const auto count = m.field(std::string(stage) + "_count");
      if (!count) continue;  // stage not exercised yet
      const auto buckets = m.field(std::string(stage) + "_buckets");
      ASSERT_TRUE(buckets) << stage;
      const std::uint64_t n = std::stoull(*count);
      EXPECT_EQ(sum_bucket_counts(*buckets), n)
          << stage << " dump " << dump
          << ": bucket sum drifted from count mid-dump";
      EXPECT_GE(n, last_count[stage])
          << stage << " count went backwards across dumps";
      last_count[stage] = n;
    }
  }
  stop.store(true);
  for (auto& t : load) t.join();
}

TEST(Server, MetricsPromRendersExposition) {
  Server server(small_server_options());
  server.handle_line("equilibrium workload=water threads=4 fan=1");
  server.handle_line("equilibrium workload=water threads=4 fan=1");
  const std::string prom = server.handle_line("metrics prom");
  // The one multi-line response in the protocol: raw exposition text,
  // not an `ok ...` line. (Format-lint lives in util_test's
  // check_prometheus_format; here we pin the server's wiring.)
  EXPECT_NE(prom.rfind("ok", 0), 0u);
  EXPECT_NE(prom.find("# TYPE tecfan_requests_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("tecfan_requests_total 3"), std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE tecfan_compute_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(prom.find("tecfan_compute_latency_us_count 1"), std::string::npos);
  // Runtime health gauges ride along.
  EXPECT_NE(prom.find("tecfan_pool_queue_depth"), std::string::npos);
  // handle_line pops the trailing newline like every other reply; the
  // exposition ends with its marker.
  ASSERT_GE(prom.size(), 5u);
  EXPECT_EQ(prom.substr(prom.size() - 5), "# EOF");
}

// -------------------------------------------------------------- tracing

TEST(Server, HeadSampledMissCarriesSpansAndTraceVerbDumpsThem) {
  auto o = small_server_options();
  o.trace_every = 1;  // sample every head request
  Server server(o);
  const std::string miss =
      server.handle_line("equilibrium workload=water threads=4 fan=1");
  ASSERT_EQ(miss.rfind("ok", 0), 0u) << miss;
  EXPECT_NE(miss.find(" trace="), std::string::npos) << miss;
  const std::size_t miss_spans = miss.find(" spans=");
  ASSERT_NE(miss_spans, std::string::npos) << miss;
  for (const char* name : {"e2e", "cache_probe", "queue_wait", "compute"})
    EXPECT_NE(miss.find(name, miss_spans), std::string::npos)
        << name << " missing from " << miss;

  // The hit is traced too (its own fresh context), but the payload that
  // came out of the cache must stay trace-free: exactly one trace= on
  // the reply, and no compute span replayed from the stored entry.
  const std::string hit =
      server.handle_line("equilibrium workload=water threads=4 fan=1");
  ASSERT_EQ(hit.rfind("ok", 0), 0u) << hit;
  EXPECT_NE(hit.find(" cached=1"), std::string::npos) << hit;
  const std::size_t first = hit.find(" trace=");
  ASSERT_NE(first, std::string::npos) << hit;
  EXPECT_EQ(hit.find(" trace=", first + 1), std::string::npos) << hit;
  const std::size_t hit_spans = hit.find(" spans=");
  ASSERT_NE(hit_spans, std::string::npos) << hit;
  EXPECT_EQ(hit.find("compute", hit_spans), std::string::npos) << hit;

  const Response dump = parse_response(server.handle_line("trace limit=8"));
  ASSERT_EQ(dump.status, Response::Status::kOk);
  ASSERT_TRUE(dump.field("traces"));
  EXPECT_GE(std::stoi(*dump.field("traces")), 2);
  const auto t0 = dump.field("t0");
  ASSERT_TRUE(t0);
  EXPECT_NE(t0->find("\"name\":\"e2e\""), std::string::npos) << *t0;
  EXPECT_NE(t0->find("\"tier\":\"tecfand\""), std::string::npos) << *t0;

  EXPECT_EQ(server.tracer().sampled_traces(), 2u);
  EXPECT_EQ(server.tracer().open_spans(), 0);
}

TEST(Server, PropagatedTraceContextIsAdoptedNotResampled) {
  Server server(small_server_options());  // trace_every = 0: never heads
  const std::string reply = server.handle_line(
      "equilibrium workload=water threads=4 fan=1 trace=deadbeef-1f");
  ASSERT_EQ(reply.rfind("ok", 0), 0u) << reply;
  // The reply context keeps the upstream trace id (new root span id).
  EXPECT_NE(reply.find(" trace=deadbeef-"), std::string::npos) << reply;
  EXPECT_NE(reply.find(" spans="), std::string::npos) << reply;
  EXPECT_EQ(server.tracer().adopted_traces(), 1u);
  EXPECT_EQ(server.tracer().sampled_traces(), 0u);

  // An untraced request on the same server stays untraced.
  const std::string plain =
      server.handle_line("equilibrium workload=water threads=4 fan=2");
  EXPECT_EQ(plain.find(" trace="), std::string::npos) << plain;

  const Response stats = parse_response(server.handle_line("stats"));
  ASSERT_EQ(stats.status, Response::Status::kOk);
  EXPECT_EQ(stats.field("traces_adopted"), std::optional<std::string>("1"));
  EXPECT_EQ(stats.field("traces_sampled"), std::optional<std::string>("0"));
  EXPECT_TRUE(stats.field("uptime_s"));
  EXPECT_TRUE(stats.field("build"));
}

TEST(Server, UnknownPolicyAndWorkloadAreErrors) {
  Server server(small_server_options());
  Request req;
  req.kind = RequestKind::kRun;
  req.workload = "water";
  req.threads = 4;
  req.policy = "frobnicate";
  EXPECT_EQ(server.handle(req).status, Response::Status::kError);

  Request bad_wl;
  bad_wl.kind = RequestKind::kEquilibrium;
  bad_wl.workload = "doom";
  bad_wl.threads = 4;
  EXPECT_EQ(server.handle(bad_wl).status, Response::Status::kError);
  EXPECT_EQ(server.stats().errors, 2u);
}

TEST(Server, DefaultWorkerCountIsClamped) {
  const std::size_t n = default_worker_count();
  EXPECT_GE(n, 2u);
  EXPECT_LE(n, 16u);
}

// Eight workers, one engine: every compute builds a throwaway simulator
// over the server's single shared ChipEngine. Run under TSan in the tier-1
// leg this is the service-layer proof of the engine/workspace split.
TEST(Server, EightWorkersShareOneEngine) {
  ServerOptions opts = small_server_options();
  opts.workers = 8;
  opts.queue_capacity = 32;
  Server server(opts);
  ASSERT_GT(server.engine().memory_bytes(), 0u);

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  std::atomic<int> failures{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&server, &failures, i] {
      Request req;
      req.kind = RequestKind::kEquilibrium;
      req.workload = "water";
      req.threads = 4;
      req.fan = i % 7;  // distinct knobs: mostly cache misses, all computes
      const Response r = server.handle(req);
      if (r.status != Response::Status::kOk) failures.fetch_add(1);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  const Server::Stats s = server.stats();
  EXPECT_GT(s.computes, 0u);
  // The shared engine dominates; per-worker scratch is a small fraction.
  EXPECT_GT(s.engine_bytes, 0u);
  EXPECT_GT(s.workspace_bytes, 0u);
  EXPECT_GT(s.engine_bytes, s.workspace_bytes);
}

// Eight concurrent `run` requests, one shared ControlEngine: every policy
// the factory builds borrows the engine the server's ChipEngine owns and
// adds only its own PolicyWorkspace. Distinct (policy, workload, fan)
// combos keep every client on the compute path. Run under TSan in the
// tier-1 leg this is the control-layer proof of the engine/workspace
// split.
TEST(Server, SharedControlEngineAcrossConcurrentRuns) {
  ServerOptions opts = small_server_options();
  opts.workers = 8;
  opts.queue_capacity = 32;
  Server server(opts);
  ASSERT_NE(server.engine().control(), nullptr);
  ASSERT_GT(server.engine().control()->memory_bytes(), 0u);

  const char* policies[] = {"fan-only", "fan+tec",     "fan+dvfs",
                            "dvfs+tec", "dynamic-fan", "tecfan",
                            "tecfan-chipwide", "tecfan"};
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  std::atomic<int> failures{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&server, &failures, &policies, i] {
      Request req;
      req.kind = RequestKind::kRun;
      req.workload = i % 2 == 0 ? "water" : "cholesky";
      req.threads = 4;
      req.policy = policies[i];
      req.fan = i % 4;
      const Response r = server.handle(req);
      if (r.status != Response::Status::kOk) failures.fetch_add(1);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(server.stats().computes, 0u);
}

TEST(ServerTcp, RoundTripAndConcurrentClients) {
  Server server(small_server_options());
  const std::uint16_t port = server.bind_listen(0);
  std::thread serving([&server] { server.serve(); });

  auto client_session = [port](int salt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const std::string req = "equilibrium workload=water threads=4 fan=" +
                            std::to_string(salt % 2) + "\nquit\n";
    ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
              static_cast<ssize_t>(req.size()));
    std::string acc;
    char buf[1024];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      acc.append(buf, static_cast<std::size_t>(n));
      if (std::count(acc.begin(), acc.end(), '\n') >= 2) break;
    }
    ::close(fd);
    std::istringstream lines(acc);
    std::string l1;
    ASSERT_TRUE(std::getline(lines, l1));
    EXPECT_EQ(parse_response(l1).status, Response::Status::kOk) << l1;
  };

  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c)
    clients.emplace_back([&client_session, c] { client_session(c); });
  for (auto& t : clients) t.join();

  server.stop();
  serving.join();
  EXPECT_GE(server.stats().requests, 6u);  // 3 x (equilibrium + quit)
}

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

// Regression: a client that pipelines requests and disconnects without
// reading leaves the connection thread writing into a closed socket.
// Library sends use MSG_NOSIGNAL, so that must surface as a per-session
// error, not a SIGPIPE that kills the whole daemon (the gtest process
// here). Before the fix this test dies with SIGPIPE.
TEST(ServerTcp, ClientDisconnectMidWriteDoesNotKillTheServer) {
  Server server(small_server_options());
  const std::uint16_t port = server.bind_listen(0);
  std::thread serving([&server] { server.serve(); });

  for (int round = 0; round < 4; ++round) {
    const int fd = connect_to(port);
    // `stats` replies are long enough to still be in flight when the
    // close lands; pipeline many so writes keep hitting the dead socket.
    std::string burst;
    for (int i = 0; i < 64; ++i) burst += "stats\n";
    (void)::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL);
    ::close(fd);  // vanish without reading a single reply
  }

  // The daemon must still be alive and serving fresh connections.
  const int fd = connect_to(port);
  const std::string req = "ping\nquit\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(req.size()));
  std::string acc;
  char buf[256];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    acc.append(buf, static_cast<std::size_t>(n));
    if (std::count(acc.begin(), acc.end(), '\n') >= 2) break;
  }
  ::close(fd);
  EXPECT_EQ(parse_response(acc.substr(0, acc.find('\n')))
                .field("pong"),
            std::optional<std::string>("1"))
      << acc;
  server.stop();
  serving.join();
}

// ---------------------------------------------------------- server lifecycle

TEST(ServerLifecycle, EphemeralPortCanBeReboundAfterStop) {
  std::uint16_t port = 0;
  {
    Server first(small_server_options());
    port = first.bind_listen(0);
    ASSERT_GT(port, 0u);
    std::thread serving([&first] { first.serve(); });
    first.stop();
    serving.join();
  }
  // The listening socket is fully released: the same port binds again
  // (SO_REUSEADDR covers the TIME_WAIT tail).
  Server second(small_server_options());
  ASSERT_EQ(second.bind_listen(port), port);
  std::thread serving([&second] { second.serve(); });
  const int fd = connect_to(port);
  const std::string req = "ping\nquit\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(req.size()));
  char buf[128];
  EXPECT_GT(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);
  second.stop();
  serving.join();
}

TEST(ServerLifecycle, StopRacingServeShutsDownCleanly) {
  // stop() may land before, during, or after the accept loop settles;
  // every interleaving must return from serve() and join cleanly.
  for (int round = 0; round < 5; ++round) {
    Server server(small_server_options());
    server.bind_listen(0);
    std::thread serving([&server] { server.serve(); });
    if (round > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
    server.stop();
    serving.join();
  }
}

TEST(ServerLifecycle, StopDrainsInFlightConnections) {
  Server server(small_server_options());
  const std::uint16_t port = server.bind_listen(0);
  std::thread serving([&server] { server.serve(); });

  // One idle session and one with a partial (unterminated) request line
  // buffered: stop() must close both and return, not wait for the line
  // to complete.
  const int idle_fd = connect_to(port);
  const int partial_fd = connect_to(port);
  const std::string partial = "equilibrium workload=water";  // no '\n'
  ASSERT_EQ(::send(partial_fd, partial.data(), partial.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(partial.size()));
  std::this_thread::sleep_for(20ms);  // let the conn threads pick them up

  server.stop();
  serving.join();

  // Both clients observe EOF (connection closed server-side), not a hang.
  char buf[64];
  EXPECT_LE(::recv(idle_fd, buf, sizeof(buf), 0), 0);
  EXPECT_LE(::recv(partial_fd, buf, sizeof(buf), 0), 0);
  ::close(idle_fd);
  ::close(partial_fd);
}

// -------------------------------------------------- framing: line bounds

// Regression: LineReader buffered bytes without limit when a peer
// streamed data with no '\n' (or one absurdly long line). The reader now
// latches overflowed() at the cap and stops producing lines.
TEST(LineReader, NewlineFreeStreamLatchesOverflowInsteadOfGrowing) {
  LineReader reader;
  reader.set_max_line_bytes(64);
  for (int i = 0; i < 8 && !reader.overflowed(); ++i)
    reader.append(std::string(32, 'x'));  // never a newline
  EXPECT_TRUE(reader.overflowed());
  EXPECT_FALSE(reader.has_line());
  EXPECT_EQ(reader.pop_line(), std::nullopt);
  // The buffer stopped growing near the cap instead of holding all 256.
  EXPECT_LE(reader.buffered_bytes(), reader.max_line_bytes() + 32);
}

TEST(LineReader, OverlongLineWithNewlineAlsoOverflows) {
  LineReader reader;
  reader.set_max_line_bytes(16);
  reader.append(std::string(40, 'y') + "\nok\n");
  EXPECT_TRUE(reader.overflowed());
  // Even the complete short line behind it is withheld: the session is
  // protocol-broken and must be abandoned, not resynchronized.
  EXPECT_EQ(reader.pop_line(), std::nullopt);
}

TEST(LineReader, LinesUnderTheCapAreUnaffected) {
  LineReader reader;
  reader.set_max_line_bytes(16);
  reader.append("alpha\nbeta\n");
  EXPECT_FALSE(reader.overflowed());
  EXPECT_EQ(reader.pop_line(), std::optional<std::string>("alpha"));
  EXPECT_EQ(reader.pop_line(), std::optional<std::string>("beta"));
  reader.reset(-1);
  EXPECT_FALSE(reader.overflowed());
}

TEST(LineReader, BlockingReadPathLatchesOverflowToo) {
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  LineReader reader(sp[0]);
  reader.set_max_line_bytes(64);
  const std::string flood(256, 'z');  // no newline, over the cap
  ASSERT_EQ(::send(sp[1], flood.data(), flood.size(), 0),
            static_cast<ssize_t>(flood.size()));
  EXPECT_EQ(reader.read_line(std::chrono::steady_clock::now() + 2s),
            std::nullopt);
  EXPECT_TRUE(reader.overflowed());
  ::close(sp[0]);
  ::close(sp[1]);
}

// The server answers one protocol error and hangs up on an over-long
// request line instead of buffering it without bound.
TEST(ServerTcp, OverlongRequestLineGetsAnErrorAndTheBoot) {
  Server server(small_server_options());
  const std::uint16_t port = server.bind_listen(0);
  std::thread serving([&server] { server.serve(); });

  const int fd = connect_to(port);
  // > kDefaultMaxLineBytes of newline-free garbage.
  const std::string chunk(64 * 1024, 'q');
  bool peer_gone = false;
  for (int i = 0; i < 20 && !peer_gone; ++i)
    peer_gone = ::send(fd, chunk.data(), chunk.size(), MSG_NOSIGNAL) < 0;
  ::shutdown(fd, SHUT_WR);
  LineReader reader(fd);
  const auto reply = reader.read_line(std::chrono::steady_clock::now() + 5s);
  ASSERT_TRUE(reply.has_value());
  const Response r = parse_response(*reply);
  EXPECT_EQ(r.status, Response::Status::kError);
  EXPECT_NE(r.error.find("too long"), std::string::npos) << *reply;
  // And then EOF: the session is gone, not draining the flood.
  EXPECT_EQ(reader.read_line(std::chrono::steady_clock::now() + 5s),
            std::nullopt);
  ::close(fd);

  server.stop();
  serving.join();
  EXPECT_GE(server.stats().errors, 1u);
}

// ----------------------------------------------- framing: fault injection

TEST(FaultInjector, SameSeedSameDecisionStream) {
  ScheduledFaultInjector::Options o;
  o.seed = 42;
  o.send_short_p = 0.5;
  o.send_short_cap = 3;
  o.recv_eof_p = 0.25;
  ScheduledFaultInjector a(o), b(o);
  for (int i = 0; i < 64; ++i) {
    const FaultDecision da = a.on_send(3, 100);
    const FaultDecision db = b.on_send(3, 100);
    EXPECT_EQ(static_cast<int>(da.kind), static_cast<int>(db.kind));
    const FaultDecision ra = a.on_recv(3);
    const FaultDecision rb = b.on_recv(3);
    EXPECT_EQ(static_cast<int>(ra.kind), static_cast<int>(rb.kind));
  }
  const auto ca = a.counts(), cb = b.counts();
  EXPECT_EQ(ca.sends_shortened, cb.sends_shortened);
  EXPECT_EQ(ca.recvs_eof, cb.recvs_eof);
  EXPECT_GT(ca.total_injected(), 0u);
}

TEST(FaultInjector, ConnectFaultsAreScopedToListedPorts) {
  ScheduledFaultInjector::Options o;
  o.seed = 7;
  o.connect_refuse_p = 1.0;
  o.connect_ports = {7411};
  ScheduledFaultInjector injector(o);
  EXPECT_EQ(injector.on_connect(7411).kind, FaultDecision::Kind::kFail);
  EXPECT_EQ(injector.on_connect(7412).kind, FaultDecision::Kind::kNone);
}

TEST(FaultInjector, SendAllDeliversEverythingUnderShortWrites) {
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  ScheduledFaultInjector::Options o;
  o.seed = 9;
  o.send_short_p = 1.0;  // every send capped
  o.send_short_cap = 3;
  ScheduledFaultInjector injector(o);
  std::string payload;
  for (int i = 0; i < 200; ++i) payload += "line " + std::to_string(i) + "\n";
  std::string got;
  std::thread reader_thread([&] {
    char buf[512];
    ssize_t n;
    while ((n = ::recv(sp[1], buf, sizeof(buf), 0)) > 0)
      got.append(buf, static_cast<std::size_t>(n));
  });
  {
    ScopedFaultInjector armed(&injector);
    EXPECT_TRUE(send_all(sp[0], payload));
  }
  ::shutdown(sp[0], SHUT_WR);
  reader_thread.join();
  EXPECT_EQ(got, payload);  // byte-exact despite 3-byte writes
  EXPECT_GT(injector.counts().sends_shortened, 0u);
  ::close(sp[0]);
  ::close(sp[1]);
}

TEST(FaultInjector, SendAllReportsInjectedFailure) {
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  ScheduledFaultInjector::Options o;
  o.seed = 11;
  o.send_fail_p = 1.0;
  ScheduledFaultInjector injector(o);
  {
    ScopedFaultInjector armed(&injector);
    EXPECT_FALSE(send_all(sp[0], "ping\n"));
  }
  EXPECT_TRUE(send_all(sp[0], "ping\n"));  // disarmed: works again
  ::close(sp[0]);
  ::close(sp[1]);
}

// Regression for the gathered-sendmsg path: partial writes (including an
// injected 1-byte cap) must deliver every byte exactly once, and a
// zero-byte sendmsg return must not spin the flush loop.
TEST(WriteQueue, FlushDeliversExactlyOnceUnderInjectedShortWrites) {
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  ASSERT_TRUE(set_nonblocking(sp[0]));
  WriteQueue q;
  std::string expect;
  for (int i = 0; i < 300; ++i) {
    std::string chunk = "chunk " + std::to_string(i) + "\n";
    expect += chunk;
    q.push(std::move(chunk));
  }
  ScheduledFaultInjector::Options o;
  o.seed = 13;
  o.send_short_p = 1.0;
  o.send_short_cap = 1;  // worst case: one byte per gathered flush
  ScheduledFaultInjector injector(o);
  std::string got;
  char buf[4096];
  {
    ScopedFaultInjector armed(&injector);
    int spins = 0;
    while (!q.empty()) {
      const auto r = q.flush(sp[0]);
      ASSERT_NE(r, WriteQueue::FlushResult::kError);
      // Drain the peer so a kBlocked result can make progress again.
      ssize_t n;
      while ((n = ::recv(sp[1], buf, sizeof(buf), MSG_DONTWAIT)) > 0)
        got.append(buf, static_cast<std::size_t>(n));
      ASSERT_LT(++spins, 1000000) << "flush loop is not making progress";
    }
  }
  ssize_t n;
  while ((n = ::recv(sp[1], buf, sizeof(buf), MSG_DONTWAIT)) > 0)
    got.append(buf, static_cast<std::size_t>(n));
  EXPECT_EQ(got.size(), expect.size());
  EXPECT_EQ(got, expect);
  EXPECT_GT(injector.counts().sends_shortened, 0u);
  ::close(sp[0]);
  ::close(sp[1]);
}

TEST(FaultInjector, FaultedRecvDribblesAndEofs) {
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  const std::string line = "ok pong=1\n";
  ASSERT_EQ(::send(sp[1], line.data(), line.size(), 0),
            static_cast<ssize_t>(line.size()));
  ScheduledFaultInjector::Options o;
  o.seed = 17;
  o.recv_short_p = 1.0;
  o.recv_short_cap = 1;  // one byte per recv
  ScheduledFaultInjector injector(o);
  {
    ScopedFaultInjector armed(&injector);
    LineReader reader(sp[0]);
    const auto got = reader.read_line(std::chrono::steady_clock::now() + 2s);
    EXPECT_EQ(got, std::optional<std::string>("ok pong=1"));
    EXPECT_GT(injector.counts().recvs_shortened, 8u);
  }
  ScheduledFaultInjector::Options eof;
  eof.seed = 19;
  eof.recv_eof_p = 1.0;
  ScheduledFaultInjector eof_injector(eof);
  ASSERT_EQ(::send(sp[1], line.data(), line.size(), 0),
            static_cast<ssize_t>(line.size()));
  {
    ScopedFaultInjector armed(&eof_injector);
    LineReader reader(sp[0]);
    // Injected EOF: the reader sees an orderly close despite live data.
    EXPECT_EQ(reader.read_line(std::chrono::steady_clock::now() + 2s),
              std::nullopt);
  }
  ::close(sp[0]);
  ::close(sp[1]);
}

// Counter conservation is checkable over the wire: the stats verb reports
// pool_submits alongside the terminal counters.
TEST(Server, StatsVerbReportsConservedPoolCounters) {
  Server server(small_server_options());
  bool quit = false;
  for (int fan = 0; fan < 3; ++fan)
    server.handle_line("equilibrium workload=water threads=4 fan=" +
                           std::to_string(fan),
                       &quit);
  server.handle_line("equilibrium workload=nosuch", &quit);  // parse error
  const Response stats = parse_response(server.handle_line("stats", &quit));
  ASSERT_EQ(stats.status, Response::Status::kOk);
  const auto field = [&](const char* k) {
    const auto v = stats.field(k);
    EXPECT_TRUE(v.has_value()) << k;
    return v ? std::stoull(*v) : 0ull;
  };
  const auto submits = field("pool_submits");
  EXPECT_GE(submits, 3u);
  EXPECT_EQ(submits, field("pool_executed") + field("pool_failed") +
                         field("pool_expired") + field("pool_rejected"));
}

}  // namespace
