// Tests for the cluster layer: the consistent-hash ShardMap, the pooled
// BackendClient, HealthMonitor markdown/recovery, and end-to-end router
// smoke tests (routed responses bit-identical to direct serving, disjoint
// backend cache shards, transparent failover when a backend dies). The
// ClusterSmoke suite runs real in-process Server fleets and is included
// in the tier-1 TSan leg.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/backend_client.h"
#include "cluster/event_loop.h"
#include "cluster/health_monitor.h"
#include "cluster/router.h"
#include "cluster/shard_map.h"
#include "service/framing.h"
#include "service/request.h"
#include "service/server.h"

namespace {

using namespace tecfan;
using namespace std::chrono_literals;

// ---------------------------------------------------------------- shard map

std::vector<std::string> sample_keys(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  const char* workloads[] = {"water", "cholesky", "lu", "fmm", "volrend"};
  std::size_t i = 0;
  while (keys.size() < n) {
    service::Request r;
    r.kind = service::RequestKind::kEquilibrium;
    r.workload = workloads[i % 5];
    r.threads = (i / 5) % 2 ? 16 : 4;
    r.fan = static_cast<int>(i % 8);
    r.dvfs = static_cast<int>((i / 8) % 4);
    keys.push_back(service::canonical_key(r));
    ++i;
    if (i > 10 * n) break;  // workload/fan/dvfs grid exhausted
  }
  return keys;
}

TEST(ShardMap, HashIsStableAcrossProcessesAndBuilds) {
  // FNV-1a 64 golden values: the ring layout must never depend on
  // std::hash or the build, or a router restart remaps every key.
  EXPECT_EQ(cluster::stable_hash(""), 14695981039346656037ull);
  EXPECT_EQ(cluster::stable_hash("a"), 12638187200555641996ull);
  EXPECT_EQ(cluster::stable_hash("backend-0#0"),
            cluster::stable_hash(std::string("backend-0#0")));
  EXPECT_NE(cluster::stable_hash("backend-0#0"),
            cluster::stable_hash("backend-0#1"));
}

TEST(ShardMap, OwnerIsDeterministicAcrossInstances) {
  const cluster::ShardMap a(4), b(4);
  for (const auto& key : sample_keys(64)) {
    EXPECT_EQ(a.owner(key), b.owner(key)) << key;
    EXPECT_LT(a.owner(key), 4u);
  }
}

TEST(ShardMap, EveryBackendOwnsAShare) {
  const cluster::ShardMap map(4, 64);
  const auto keys = sample_keys(320);
  std::map<std::size_t, std::size_t> share;
  for (const auto& key : keys) ++share[map.owner(key)];
  ASSERT_EQ(share.size(), 4u);  // no empty shard with 64 vnodes
  for (const auto& [backend, count] : share) {
    // Loose balance bounds: FNV + 64 vnodes keeps shards within a few x.
    EXPECT_GE(count, keys.size() / 20) << "backend " << backend;
    EXPECT_LE(count, keys.size() * 6 / 10) << "backend " << backend;
  }
}

TEST(ShardMap, ReplicaChainIsDistinctAndStartsAtOwner) {
  const cluster::ShardMap map(4);
  for (const auto& key : sample_keys(32)) {
    const auto chain = map.replica_chain(key);
    ASSERT_EQ(chain.size(), 4u);
    EXPECT_EQ(chain[0], map.owner(key));
    std::set<std::size_t> distinct(chain.begin(), chain.end());
    EXPECT_EQ(distinct.size(), 4u) << key;

    const auto truncated = map.replica_chain(key, 2);
    ASSERT_EQ(truncated.size(), 2u);
    EXPECT_EQ(truncated[0], chain[0]);
    EXPECT_EQ(truncated[1], chain[1]);
  }
}

TEST(ShardMap, FleetGrowthMovesOnlyAMinorityOfKeys) {
  // Consistent hashing's point: going 4 -> 5 backends should move ~1/5 of
  // keys (to the new backend only), not reshuffle everything. Allow
  // generous slack for virtual-node variance.
  const cluster::ShardMap before(4), after(5);
  const auto keys = sample_keys(320);
  std::size_t moved = 0, moved_elsewhere = 0;
  for (const auto& key : keys) {
    const std::size_t a = before.owner(key), b = after.owner(key);
    if (a != b) {
      ++moved;
      if (b != 4) ++moved_elsewhere;  // moved to an OLD backend: forbidden
    }
  }
  EXPECT_EQ(moved_elsewhere, 0u);
  EXPECT_LT(moved, keys.size() / 2);
  EXPECT_GT(moved, 0u);  // the new backend did take some share
}

// ----------------------------------------------------------- backend client

service::ServerOptions small_server_options() {
  service::ServerOptions o;
  o.tiles_x = 2;
  o.tiles_y = 2;
  o.workers = 2;
  o.queue_capacity = 8;
  o.cache_capacity = 64;
  o.max_sim_time_s = 0.05;
  return o;
}

/// A Server bound to an ephemeral port with its accept loop running.
struct LiveServer {
  explicit LiveServer(service::ServerOptions options = small_server_options())
      : server(std::make_unique<service::Server>(options)) {
    port = server->bind_listen(0);
    thread = std::thread([this] { server->serve(); });
  }
  ~LiveServer() { shutdown(); }
  void shutdown() {
    if (server) server->stop();
    if (thread.joinable()) thread.join();
  }
  /// Stop and destroy the server, closing its listening port (the fleet
  /// member "dies"; the port stays free for the failover tests).
  void kill() {
    shutdown();
    server.reset();
  }

  std::unique_ptr<service::Server> server;
  std::uint16_t port = 0;
  std::thread thread;
};

/// A listening socket that accepts connections and reads forever but
/// never replies — a backend that dials fine yet stalls every request.
struct SilentBackend {
  SilentBackend() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd, 16), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port = ntohs(addr.sin_port);
    thread = std::thread([this] {
      while (!stop.load()) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) break;  // listen_fd closed by the destructor
        std::lock_guard<std::mutex> lock(mu);
        conn_fds.push_back(fd);
      }
    });
  }
  ~SilentBackend() {
    stop.store(true);
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
    if (thread.joinable()) thread.join();
    for (const int fd : conn_fds) ::close(fd);
  }

  int listen_fd = -1;
  std::uint16_t port = 0;
  std::atomic<bool> stop{false};
  std::mutex mu;
  std::vector<int> conn_fds;
  std::thread thread;
};

/// Bind-then-close: a loopback port with nothing listening on it.
std::uint16_t dead_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST(BackendClient, RoundTripReusesPooledConnections) {
  LiveServer backend;
  cluster::BackendClient client(backend.port);

  const auto r1 = client.round_trip("ping");
  ASSERT_TRUE(r1);
  EXPECT_EQ(r1->rfind("ok", 0), 0u) << *r1;
  const auto r2 = client.round_trip("ping");
  ASSERT_TRUE(r2);
  EXPECT_EQ(*r1, *r2);

  const auto s = client.stats();
  EXPECT_EQ(s.dials, 1u);  // second round trip reused the pooled conn
  EXPECT_EQ(s.reuses, 1u);
  EXPECT_EQ(s.abandons, 0u);
  EXPECT_EQ(s.idle, 1u);

  client.close_idle();
  EXPECT_EQ(client.stats().idle, 0u);
}

TEST(BackendClient, DialFailureIsACleanMiss) {
  cluster::BackendClient client(dead_port());
  auto lease = client.lease();
  EXPECT_FALSE(lease.valid());
  EXPECT_FALSE(client.round_trip("ping",
                                 std::chrono::steady_clock::now() + 100ms));
  EXPECT_GE(client.stats().dial_failures, 2u);
  EXPECT_EQ(client.stats().idle, 0u);
}

TEST(BackendClient, DeadlineTimeoutAbandonsTheConnection) {
  // The backend accepts and stalls: the read must time out at the
  // deadline and the connection must NOT go back to the pool (a late
  // reply on a reused connection would answer the wrong request).
  SilentBackend backend;
  cluster::BackendClient client(backend.port);
  const auto reply = client.round_trip(
      "ping", std::chrono::steady_clock::now() + 50ms);
  EXPECT_FALSE(reply);
  const auto s = client.stats();
  EXPECT_EQ(s.dials, 1u);
  EXPECT_EQ(s.abandons, 1u);
  EXPECT_EQ(s.idle, 0u);
}

// ------------------------------------------------------------ health monitor

TEST(HealthMonitor, TrafficReportsMarkDownAndRecover) {
  // No monitor thread: pure traffic-path observations.
  cluster::BackendClient client(dead_port());
  cluster::HealthMonitor::Options opts;
  opts.down_after = 2;
  cluster::HealthMonitor monitor({&client}, opts);

  EXPECT_TRUE(monitor.up(0));  // optimistic start
  monitor.report_failure(0);
  EXPECT_TRUE(monitor.up(0));  // one failure is not a markdown
  monitor.report_failure(0);
  EXPECT_FALSE(monitor.up(0));
  EXPECT_EQ(monitor.up_count(), 0u);
  EXPECT_EQ(monitor.health(0).markdowns, 1u);

  monitor.report_success(0);  // first success marks up immediately
  EXPECT_TRUE(monitor.up(0));
  EXPECT_EQ(monitor.up_count(), 1u);
}

TEST(HealthMonitor, ProbesMarkDeadBackendDownAndLiveBackendUp) {
  LiveServer live;
  cluster::BackendClient up_client(live.port);
  cluster::BackendClient down_client(dead_port());

  cluster::HealthMonitor::Options opts;
  opts.interval_s = 0.01;
  opts.down_after = 2;
  opts.ping_timeout_ms = 200.0;
  cluster::HealthMonitor monitor({&up_client, &down_client}, opts);
  monitor.start();

  monitor.probe_now();
  monitor.probe_now();  // second consecutive failure => markdown

  EXPECT_TRUE(monitor.up(0));
  EXPECT_FALSE(monitor.up(1));
  EXPECT_EQ(monitor.up_count(), 1u);

  const auto healthy = monitor.health(0);
  EXPECT_GE(healthy.probes, 2u);
  EXPECT_EQ(healthy.probe_failures, 0u);
  EXPECT_GT(healthy.last_rtt_us, 0.0);
  const auto dead = monitor.health(1);
  EXPECT_GE(dead.probe_failures, 2u);
  EXPECT_EQ(dead.markdowns, 1u);
  monitor.stop();
}

TEST(HealthMonitor, RestartedBackendIsMarkedUpAgain) {
  auto backend = std::make_unique<LiveServer>();
  const std::uint16_t port = backend->port;
  cluster::BackendClient client(port);

  cluster::HealthMonitor::Options opts;
  opts.interval_s = 0.01;
  opts.down_after = 1;
  opts.backoff_base_s = 0.01;
  opts.backoff_max_s = 0.05;
  cluster::HealthMonitor monitor({&client}, opts);
  monitor.start();
  monitor.probe_now();
  ASSERT_TRUE(monitor.up(0));

  backend->kill();
  client.close_idle();  // pooled conns to the dead server are stale
  monitor.probe_now();
  ASSERT_FALSE(monitor.up(0));

  // Same port, new process (well, new Server): the monitor must notice.
  service::Server revived(small_server_options());
  ASSERT_EQ(revived.bind_listen(port), port);
  std::thread serving([&revived] { revived.serve(); });
  for (int i = 0; i < 100 && !monitor.up(0); ++i) monitor.probe_now();
  EXPECT_TRUE(monitor.up(0));
  monitor.stop();
  revived.stop();
  serving.join();
}

// ------------------------------------------------------------ router smoke

cluster::RouterOptions router_options(
    const std::vector<std::uint16_t>& ports) {
  cluster::RouterOptions o;
  o.backend_ports = ports;
  o.health.interval_s = 0.05;
  o.health.ping_timeout_ms = 500.0;
  return o;
}

std::vector<std::string> distinct_requests(std::size_t n) {
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < n; ++i)
    lines.push_back("equilibrium workload=water threads=4 fan=" +
                    std::to_string(i % 7) + " dvfs=" + std::to_string(i / 7));
  return lines;
}

TEST(ClusterSmoke, ControlVerbsAreAnsweredLocally) {
  LiveServer b0, b1;
  cluster::Router router(router_options({b0.port, b1.port}));

  bool quit = false;
  const auto pong = service::parse_response(router.handle_line("ping", &quit));
  EXPECT_EQ(pong.field("pong"), std::optional<std::string>("1"));
  EXPECT_FALSE(quit);

  const auto stats =
      service::parse_response(router.handle_line("stats", &quit));
  ASSERT_EQ(stats.status, service::Response::Status::kOk);
  EXPECT_EQ(stats.field("name"), std::optional<std::string>("tecrouter"));
  EXPECT_EQ(stats.field("backends"), std::optional<std::string>("2"));
  EXPECT_EQ(stats.field("backend0_port"),
            std::optional<std::string>(std::to_string(b0.port)));

  const auto bye = service::parse_response(router.handle_line("quit", &quit));
  EXPECT_EQ(bye.field("bye"), std::optional<std::string>("1"));
  EXPECT_TRUE(quit);

  // None of those touched a backend.
  EXPECT_EQ(router.stats().routed, 0u);
  EXPECT_EQ(router.stats().local, 3u);
}

TEST(ClusterSmoke, RoutedRepliesAreBitIdenticalToDirectServing) {
  LiveServer b0, b1;
  cluster::Router router(router_options({b0.port, b1.port}));
  service::Server direct(small_server_options());  // reference: no fleet

  const auto requests = distinct_requests(8);
  std::vector<std::string> first_pass;
  for (const auto& line : requests) {
    const std::string routed = router.handle_line(line);
    const auto parsed = service::parse_response(routed);
    ASSERT_EQ(parsed.status, service::Response::Status::kOk) << routed;
    EXPECT_FALSE(parsed.cached) << routed;

    // Same solver, same floorplan => the routed reply must match a direct
    // Server field for field (the fleet is an implementation detail).
    const auto ref = direct.handle(
        service::parse_request(line).request);
    EXPECT_EQ(parsed.field("peak_t_c"), ref.field("peak_t_c")) << line;
    EXPECT_EQ(parsed.field("peak_t_k"), ref.field("peak_t_k")) << line;
    first_pass.push_back(routed);
  }

  // Second pass: every reply is a cache hit on its owning shard, and the
  // payload matches the miss-path reply except for the cached flag.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::string routed = router.handle_line(requests[i]);
    const auto parsed = service::parse_response(routed);
    ASSERT_EQ(parsed.status, service::Response::Status::kOk) << routed;
    EXPECT_TRUE(parsed.cached) << routed;
    const auto miss = service::parse_response(first_pass[i]);
    EXPECT_EQ(parsed.field("peak_t_c"), miss.field("peak_t_c"));
    EXPECT_EQ(parsed.field("energy_j"), miss.field("energy_j"));
  }

  // Sharding is disjoint: each key computed exactly once fleet-wide, on
  // the backend the ShardMap names as its owner.
  const auto s0 = b0.server->stats(), s1 = b1.server->stats();
  EXPECT_EQ(s0.computes + s1.computes, requests.size());
  EXPECT_EQ(s0.cache.hits + s1.cache.hits, requests.size());
  std::size_t owned0 = 0;
  for (const auto& line : requests)
    if (router.shards().owner(service::canonical_key(
            service::parse_request(line).request)) == 0)
      ++owned0;
  EXPECT_EQ(s0.computes, owned0);

  const auto rs = router.stats();
  EXPECT_EQ(rs.routed, 2 * requests.size());
  EXPECT_EQ(rs.failovers, 0u);
  EXPECT_EQ(rs.errors, 0u);
}

TEST(ClusterSmoke, FailoverOnBackendDeathIsInvisibleToClients) {
  LiveServer b0, b1;
  auto opts = router_options({b0.port, b1.port});
  opts.health.down_after = 2;
  cluster::Router router(opts);

  // Find a request owned by each backend, then warm both.
  std::string owned_by[2];
  for (const auto& line : distinct_requests(16)) {
    const auto key =
        service::canonical_key(service::parse_request(line).request);
    owned_by[router.shards().owner(key)] = line;
  }
  ASSERT_FALSE(owned_by[0].empty());
  ASSERT_FALSE(owned_by[1].empty());
  for (const auto& line : owned_by)
    ASSERT_EQ(service::parse_response(router.handle_line(line)).status,
              service::Response::Status::kOk);

  // Kill backend 0. The next request for its key must fail over to
  // backend 1 with NO client-visible error: the traffic path reports the
  // failure and the retry lands on the replica.
  b0.kill();
  const auto failed_over =
      service::parse_response(router.handle_line(owned_by[0]));
  EXPECT_EQ(failed_over.status, service::Response::Status::kOk)
      << failed_over.error;
  EXPECT_GE(router.stats().failovers, 1u);
  EXPECT_EQ(router.stats().errors, 0u);

  // Health converges: probes mark the dead backend down, after which its
  // keys route straight to the replica with no per-request retry.
  router.health().probe_now();
  router.health().probe_now();
  EXPECT_FALSE(router.health().up(0));
  const std::uint64_t failovers_before = router.stats().failovers;
  const auto rerouted =
      service::parse_response(router.handle_line(owned_by[0]));
  EXPECT_EQ(rerouted.status, service::Response::Status::kOk);
  EXPECT_TRUE(rerouted.cached);  // the replica computed it during failover
  EXPECT_EQ(router.stats().failovers, failovers_before);
  EXPECT_EQ(router.stats().errors, 0u);

  // The survivor still answers its own keys.
  EXPECT_EQ(service::parse_response(router.handle_line(owned_by[1])).status,
            service::Response::Status::kOk);
}

TEST(ClusterSmoke, AllBackendsDownYieldsAnErrorNotAHang) {
  auto opts = router_options({dead_port()});
  opts.health.down_after = 1;
  cluster::Router router(opts);
  router.health().probe_now();
  EXPECT_EQ(router.health().up_count(), 0u);

  const auto r = service::parse_response(
      router.handle_line("equilibrium workload=water threads=4 fan=1"));
  EXPECT_EQ(r.status, service::Response::Status::kError);
  EXPECT_NE(r.error.find("no backend"), std::string::npos) << r.error;
  EXPECT_GE(router.stats().errors, 1u);
}

TEST(ClusterSmoke, HedgeFiresWhenThePrimaryStalls) {
  // Primary shard: accepts and never answers. Replica: a real server.
  // With a fixed 10ms hedge delay the router must answer from the replica
  // while the primary is still silent.
  SilentBackend stalled;
  LiveServer live;
  auto opts = router_options({stalled.port, live.port});
  opts.hedge_ms = 10.0;
  opts.health.interval_s = 30.0;   // keep probes out of the way
  opts.health.down_after = 1000;   // the stalled backend must stay "up"
  cluster::Router router(opts);

  // A request whose canonical key is owned by the stalled backend.
  std::string stalled_line;
  for (const auto& line : distinct_requests(32)) {
    const auto key =
        service::canonical_key(service::parse_request(line).request);
    if (router.shards().owner(key) == 0) {
      stalled_line = line;
      break;
    }
  }
  ASSERT_FALSE(stalled_line.empty());
  EXPECT_GT(router.current_hedge_delay_us(), 0.0);

  const auto r = service::parse_response(router.handle_line(stalled_line));
  EXPECT_EQ(r.status, service::Response::Status::kOk) << r.error;
  const auto rs = router.stats();
  EXPECT_GE(rs.hedges, 1u);
  EXPECT_GE(rs.hedge_wins, 1u);
  EXPECT_EQ(rs.errors, 0u);
}

TEST(ClusterSmoke, TcpEndToEndThroughTheRouter) {
  LiveServer b0, b1;
  cluster::Router router(router_options({b0.port, b1.port}));
  const std::uint16_t port = router.bind_listen(0);
  std::thread serving([&router] { router.serve(); });

  // Concurrent client sessions through the router's TCP front door, each
  // reusing the line protocol exactly as against a single tecfand.
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([port, c, &failures] {
      cluster::BackendClient conn(port);  // plain line-protocol client
      for (int i = 0; i < 4; ++i) {
        const auto reply = conn.round_trip(
            "equilibrium workload=water threads=4 fan=" +
                std::to_string((c + i) % 7),
            std::chrono::steady_clock::now() + 30s);
        if (!reply || reply->rfind("ok", 0) != 0) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  router.stop();
  serving.join();
  EXPECT_GE(router.stats().requests, 12u);
  // The router's own per-stage histograms saw every routed request.
  bool saw_route = false;
  for (const auto& [name, snap] : router.metrics().histograms())
    if (name == "route") {
      saw_route = true;
      EXPECT_GE(snap.count, 12u);
    }
  EXPECT_TRUE(saw_route);
}

// ----------------------------------------------------------------- tracing

// Pull `"dur_us":<n>` out of the first span object matching `marker` in a
// trace-JSON dump; 0 when the marker or field is absent.
std::uint64_t span_duration_us(const std::string& json,
                               const std::string& marker) {
  const std::size_t at = json.find(marker);
  if (at == std::string::npos) return 0;
  const std::size_t close = json.find('}', at);
  const std::size_t dur = json.find("\"dur_us\":", at);
  if (dur == std::string::npos || dur > close) return 0;
  return std::stoull(json.substr(dur + 9));
}

// The cross-tier acceptance path: a routed miss with forced sampling must
// reassemble at the router as ONE trace carrying both tiers' spans —
// route and backend_wait from the router, e2e/cache_probe/queue_wait/
// compute folded in from the backend's reply — with durations that square
// with the router's own e2e_miss histogram.
TEST(ClusterSmoke, RoutedMissReassemblesAMultiTierTrace) {
  LiveServer b0, b1;
  auto opts = router_options({b0.port, b1.port});
  opts.trace_every = 1;
  cluster::Router router(opts);

  const std::string reply =
      router.handle_line("equilibrium workload=water threads=4 fan=1");
  const auto parsed = service::parse_response(reply);
  ASSERT_EQ(parsed.status, service::Response::Status::kOk) << reply;
  ASSERT_TRUE(parsed.field("trace")) << reply;

  const auto dump =
      service::parse_response(router.handle_line("trace limit=4"));
  ASSERT_EQ(dump.status, service::Response::Status::kOk);
  EXPECT_EQ(dump.field("traces"), std::optional<std::string>("1"));
  const auto t0 = dump.field("t0");
  ASSERT_TRUE(t0);
  // Both tiers landed in one JSON object...
  EXPECT_NE(t0->find("\"tier\":\"router\""), std::string::npos) << *t0;
  EXPECT_NE(t0->find("\"tier\":\"tecfand\""), std::string::npos) << *t0;
  // ...with every stage span the routed miss path promises. (The
  // backend's serialize span closes after its reply is built, so it
  // stays in the backend's rings and is rightly absent here.)
  for (const char* name :
       {"\"name\":\"route\"", "\"name\":\"backend_wait\"",
        "\"name\":\"cache_probe\"", "\"name\":\"queue_wait\"",
        "\"name\":\"compute\""})
    EXPECT_NE(t0->find(name), std::string::npos) << name << " | " << *t0;

  // Durations are consistent: the root e2e span brackets the stages it
  // contains, and matches the e2e_miss histogram's only sample within
  // bucket slop (log buckets are ~19% wide; allow that plus scheduling
  // noise between the two clock reads).
  const std::uint64_t e2e = span_duration_us(*t0, "\"name\":\"e2e\"");
  const std::uint64_t wait =
      span_duration_us(*t0, "\"name\":\"backend_wait\"");
  const std::uint64_t compute = span_duration_us(*t0, "\"name\":\"compute\"");
  EXPECT_GT(e2e, 0u);
  EXPECT_GE(e2e, wait) << *t0;
  EXPECT_GE(wait, compute) << *t0;
  double miss_max_us = 0.0;
  for (const auto& [name, snap] : router.metrics().histograms())
    if (name == "e2e_miss") {
      EXPECT_EQ(snap.count, 1u);
      miss_max_us = snap.max_us;
    }
  ASSERT_GT(miss_max_us, 0.0);
  const double slop = 0.25 * miss_max_us + 500.0;
  EXPECT_NEAR(static_cast<double>(e2e), miss_max_us, slop) << *t0;

  // The rings drained: nothing left open on either tier.
  EXPECT_EQ(router.tracer().open_spans(), 0);
  EXPECT_EQ(b0.server->tracer().open_spans(), 0);
  EXPECT_EQ(b1.server->tracer().open_spans(), 0);
  // The backend participated as an adopter, not a second head.
  EXPECT_EQ(router.tracer().sampled_traces(), 1u);
  EXPECT_EQ(b0.server->tracer().sampled_traces() +
                b1.server->tracer().sampled_traces(),
            0u);
  EXPECT_EQ(b0.server->tracer().adopted_traces() +
                b1.server->tracer().adopted_traces(),
            1u);
}

TEST(ClusterSmoke, RouterStatsAndPromExpositionCarryIdentity) {
  LiveServer b0, b1;
  cluster::Router router(router_options({b0.port, b1.port}));
  router.handle_line("equilibrium workload=water threads=4 fan=1");

  const auto stats = service::parse_response(router.handle_line("stats"));
  ASSERT_EQ(stats.status, service::Response::Status::kOk);
  EXPECT_TRUE(stats.field("build"));
  EXPECT_TRUE(stats.field("uptime_s"));
  EXPECT_TRUE(stats.field("traces_sampled"));
  EXPECT_TRUE(stats.field("traces_adopted"));

  // Same exposition contract as tecfand's: raw text, tecfan_ families,
  // terminated by the EOF marker.
  const std::string prom = router.handle_line("metrics prom");
  EXPECT_NE(prom.find("# TYPE tecfan_routed_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("tecfan_e2e_miss_latency_us_count 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  ASSERT_GE(prom.size(), 5u);
  EXPECT_EQ(prom.substr(prom.size() - 5), "# EOF");
}

// -------------------------------------------------------------- event loop

TEST(EventLoop, TimersFireInDueOrderAndCancelsAreHonored) {
  cluster::EventLoop loop;
  std::vector<int> fired;
  const auto now = cluster::EventLoop::Clock::now();
  const auto cancelled =
      loop.add_timer(now + 5ms, [&fired] { fired.push_back(99); });
  loop.add_timer(now + 30ms, [&fired, &loop] {
    fired.push_back(2);
    loop.stop();
  });
  loop.add_timer(now + 15ms, [&fired] { fired.push_back(1); });
  loop.cancel_timer(cancelled);
  loop.cancel_timer(0);  // the "no timer" id is ignored
  loop.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 1);  // due-time order, not registration order
  EXPECT_EQ(fired[1], 2);
}

TEST(EventLoop, DispatchesFdEventsAndStopsFromAnotherThread) {
  cluster::EventLoop loop;
  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  ASSERT_TRUE(service::set_nonblocking(pipefd[0]));

  int hits = 0;
  loop.add_fd(pipefd[0], EPOLLIN, [&](std::uint32_t) {
    char buf[16];
    while (::read(pipefd[0], buf, sizeof(buf)) > 0) {
    }
    ++hits;
    // A handler may remove its own registration mid-batch; later writes
    // must not be dispatched to it.
    loop.remove_fd(pipefd[0]);
  });

  std::thread side([&] {
    std::this_thread::sleep_for(5ms);
    ASSERT_EQ(::write(pipefd[1], "x", 1), 1);
    std::this_thread::sleep_for(20ms);
    ASSERT_EQ(::write(pipefd[1], "y", 1), 1);  // nobody is watching now
    std::this_thread::sleep_for(20ms);
    loop.stop();  // cross-thread stop via the eventfd
  });
  loop.run();
  side.join();
  EXPECT_EQ(hits, 1);
  ::close(pipefd[0]);
  ::close(pipefd[1]);
}

// -------------------------------------------------- pipelined data plane

/// A raw line-protocol client that can pipeline: write many request lines
/// in one burst, then read the responses back one by one.
struct RawClient {
  explicit RawClient(std::uint16_t port)
      : fd(service::connect_loopback(port)), reader(fd) {
    EXPECT_GE(fd, 0);
  }
  ~RawClient() {
    if (fd >= 0) ::close(fd);
  }
  bool send_lines(const std::vector<std::string>& lines) {
    std::string burst;
    for (const auto& line : lines) burst += line + '\n';
    return service::send_all(fd, burst);
  }
  std::optional<std::string> read_line(std::chrono::seconds timeout = 30s) {
    return reader.read_line(std::chrono::steady_clock::now() + timeout);
  }

  int fd = -1;
  service::LineReader reader;
};

/// A backend whose responses are scripted per connection: the i-th request
/// line on a connection is answered with script[i] verbatim; requests past
/// the end of the script are swallowed silently (the backend stalls).
struct ScriptedBackend {
  explicit ScriptedBackend(std::vector<std::string> script_lines)
      : script(std::move(script_lines)) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(
        ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
        0);
    EXPECT_EQ(::listen(listen_fd, 16), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(
        ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len),
        0);
    port = ntohs(addr.sin_port);
    thread = std::thread([this] {
      for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) break;  // listen_fd closed by the destructor
        {
          std::lock_guard<std::mutex> lock(mu);
          conn_fds.push_back(fd);
        }
        service::LineReader conn_reader(fd);
        std::size_t i = 0;
        while (auto line = conn_reader.read_line()) {
          if (i < script.size()) service::send_all(fd, script[i] + "\n");
          ++i;  // past the script: swallow the request, never reply
        }
      }
    });
  }
  ~ScriptedBackend() {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
    close_conns();
    if (thread.joinable()) thread.join();
    std::lock_guard<std::mutex> lock(mu);
    for (const int fd : conn_fds) ::close(fd);
  }
  /// Hard-stop every accepted connection: the router sees EOF with its
  /// whole in-flight FIFO outstanding — the backend "died".
  void close_conns() {
    std::lock_guard<std::mutex> lock(mu);
    for (const int fd : conn_fds) ::shutdown(fd, SHUT_RDWR);
  }

  std::vector<std::string> script;
  int listen_fd = -1;
  std::uint16_t port = 0;
  std::mutex mu;
  std::vector<int> conn_fds;
  std::thread thread;
};

/// A router with its accept loop running on the chosen data plane.
struct LiveRouter {
  explicit LiveRouter(cluster::RouterOptions options)
      : router(std::move(options)) {
    port = router.bind_listen(0);
    thread = std::thread([this] { router.serve(); });
  }
  ~LiveRouter() {
    router.stop();
    if (thread.joinable()) thread.join();
  }
  cluster::Router router;
  std::uint16_t port = 0;
  std::thread thread;
};

/// Request lines whose canonical key the ShardMap assigns to `backend`,
/// drawn from the 4-thread workload x fan x dvfs grid the 2x2-tile test
/// servers accept.
std::vector<std::string> lines_owned_by(const cluster::Router& router,
                                        std::size_t backend, std::size_t n) {
  std::vector<std::string> owned;
  for (const char* wl : {"water", "cholesky", "lu", "fmm"})
    for (int fan = 0; fan < 8; ++fan)
      for (int dvfs = 0; dvfs < 4; ++dvfs) {
        const std::string line = "equilibrium workload=" + std::string(wl) +
                                 " threads=4 fan=" + std::to_string(fan) +
                                 " dvfs=" + std::to_string(dvfs);
        const auto key =
            service::canonical_key(service::parse_request(line).request);
        if (router.shards().owner(key) == backend) owned.push_back(line);
        if (owned.size() == n) return owned;
      }
  return owned;
}

TEST(RouterPipeline, InterleavedResponsesMapToTheRightClients) {
  // Three clients pipeline distinct request slices through the epoll
  // plane at once; the keys shard across both backends, so completions
  // arrive out of request order and the per-session reorder buffer must
  // put them back. One client reads slowly to stretch the interleaving.
  LiveServer b0, b1;
  LiveRouter router(router_options({b0.port, b1.port}));

  const auto all = distinct_requests(48);
  constexpr std::size_t kPerClient = 16;
  std::vector<std::vector<std::string>> got(3);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      const std::vector<std::string> mine(
          all.begin() + static_cast<std::ptrdiff_t>(c * kPerClient),
          all.begin() + static_cast<std::ptrdiff_t>((c + 1) * kPerClient));
      RawClient conn(router.port);
      ASSERT_TRUE(conn.send_lines(mine));  // the whole slice in one burst
      for (std::size_t i = 0; i < mine.size(); ++i) {
        if (c == 0 && i % 4 == 0) std::this_thread::sleep_for(2ms);
        const auto reply = conn.read_line();
        ASSERT_TRUE(reply) << "client " << c << " reply " << i;
        got[c].push_back(*reply);
      }
    });
  }
  for (auto& t : clients) t.join();

  // Every client got its own slice's replies, in its own request order,
  // byte-identical to a direct server answering the same (miss) request.
  service::Server direct(small_server_options());
  for (std::size_t c = 0; c < 3; ++c) {
    ASSERT_EQ(got[c].size(), kPerClient);
    for (std::size_t i = 0; i < kPerClient; ++i) {
      bool quit = false;
      EXPECT_EQ(got[c][i],
                direct.handle_line(all[c * kPerClient + i], &quit))
          << "client " << c << " line " << i;
    }
  }
  EXPECT_EQ(router.router.stats().errors, 0u);
}

TEST(RouterPipeline, BackendDeathFailsInFlightOverTheRing) {
  // Backend 0 accepts, reads, and never replies; backend 1 is real. A
  // client pipelines k requests owned by backend 0, so all k sit in that
  // pipe's in-flight FIFO when the connection is hard-stopped. The router
  // must fail every descriptor over the ring to backend 1 with zero
  // client-visible errors and no cross-wired responses.
  ScriptedBackend dying({});  // empty script: never answers anything
  LiveServer survivor;
  auto opts = router_options({dying.port, survivor.port});
  opts.health.interval_s = 30.0;   // keep probes out of the way
  opts.health.down_after = 1000;   // the silent backend must stay "up"
  LiveRouter router(opts);

  const auto owned = lines_owned_by(router.router, 0, 8);
  ASSERT_GE(owned.size(), 4u);

  RawClient conn(router.port);
  ASSERT_TRUE(conn.send_lines(owned));
  std::this_thread::sleep_for(50ms);  // let all k reach the pipe's FIFO
  dying.close_conns();                // the backend dies with k in flight

  std::vector<std::string> replies;
  for (std::size_t i = 0; i < owned.size(); ++i) {
    const auto reply = conn.read_line();
    ASSERT_TRUE(reply) << "reply " << i;
    replies.push_back(*reply);
  }

  // Zero client-visible errors, and each reply matches the right request:
  // compare solver fields against a direct reference server per line.
  service::Server direct(small_server_options());
  for (std::size_t i = 0; i < owned.size(); ++i) {
    const auto parsed = service::parse_response(replies[i]);
    ASSERT_EQ(parsed.status, service::Response::Status::kOk) << replies[i];
    const auto ref =
        direct.handle(service::parse_request(owned[i]).request);
    EXPECT_EQ(parsed.field("peak_t_c"), ref.field("peak_t_c")) << owned[i];
    EXPECT_EQ(parsed.field("energy_j"), ref.field("energy_j")) << owned[i];
  }
  const auto rs = router.router.stats();
  EXPECT_EQ(rs.errors, 0u);
  EXPECT_EQ(rs.failovers, owned.size());
}

TEST(RouterPipeline, MalformedMidPipelineResponseAbandonsTheConnection) {
  // Backend 0 answers the first request on each connection with a valid
  // line, then emits garbage. The garbage cannot be paired with any
  // in-flight descriptor safely, so the router must abandon the whole
  // connection, fail the remaining FIFO over to backend 1, and redial
  // backend 0 fresh for later requests.
  const std::string scripted_ok = "ok scripted=1 peak_t_c=1.0";
  ScriptedBackend liar({scripted_ok, "%% this is not a protocol line %%"});
  LiveServer honest;
  auto opts = router_options({liar.port, honest.port});
  opts.health.interval_s = 30.0;
  opts.health.down_after = 1000;  // keep the liar routable for the redial
  LiveRouter router(opts);

  const auto owned = lines_owned_by(router.router, 0, 4);
  ASSERT_EQ(owned.size(), 4u);
  const std::vector<std::string> burst(owned.begin(), owned.begin() + 3);

  RawClient conn(router.port);
  ASSERT_TRUE(conn.send_lines(burst));
  const auto first = conn.read_line();
  ASSERT_TRUE(first);
  EXPECT_EQ(*first, scripted_ok);  // forwarded verbatim from the script
  for (int i = 0; i < 2; ++i) {
    // Requests 2 and 3 were in flight behind the garbage: both must come
    // back as real computed replies from the failover backend.
    const auto reply = conn.read_line();
    ASSERT_TRUE(reply);
    EXPECT_EQ(service::parse_response(*reply).status,
              service::Response::Status::kOk)
        << *reply;
    EXPECT_EQ(reply->find("scripted"), std::string::npos);
  }

  // The poisoned connection was abandoned: the next request to backend 0
  // runs on a fresh dial, where the per-connection script starts over.
  ASSERT_TRUE(conn.send_lines({owned[3]}));
  const auto redialed = conn.read_line();
  ASSERT_TRUE(redialed);
  EXPECT_EQ(*redialed, scripted_ok);

  const auto rs = router.router.stats();
  EXPECT_EQ(rs.errors, 0u);
  EXPECT_EQ(rs.failovers, 2u);
}

// ------------------------------------------------- data-plane equivalence

TEST(DataPlaneEquivalence, ByteIdenticalResponseStreams) {
  // The epoll plane and the legacy thread-per-session plane are two
  // implementations of the same contract: drive identical fleets with an
  // identical pipelined request sequence (miss pass + hit pass) and the
  // response byte streams must match exactly.
  const auto lines = distinct_requests(10);
  std::vector<std::string> sequence(lines.begin(), lines.end());
  sequence.insert(sequence.end(), lines.begin(), lines.end());

  std::vector<std::vector<std::string>> streams;
  for (const auto plane :
       {cluster::DataPlane::kEpoll, cluster::DataPlane::kThreads}) {
    LiveServer b0, b1;
    auto opts = router_options({b0.port, b1.port});
    opts.data_plane = plane;
    LiveRouter router(opts);
    RawClient conn(router.port);
    ASSERT_TRUE(conn.send_lines(sequence));
    std::vector<std::string> stream;
    for (std::size_t i = 0; i < sequence.size(); ++i) {
      const auto reply = conn.read_line();
      ASSERT_TRUE(reply) << "reply " << i;
      stream.push_back(*reply);
    }
    streams.push_back(std::move(stream));
  }
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams[0], streams[1]);
}

// --------------------------------------------- bounded health-probe dials

TEST(HealthMonitor, ProbeOfABlackholedBackendIsBoundedByTheDialTimeout) {
  // A listener with a saturated accept backlog silently drops further
  // SYNs, so a blocking connect() would sit in kernel retries for
  // minutes. The probe's nonblocking dial must give up at its deadline
  // instead, keeping the probe sweep prompt for the *other* backends.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(
      ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
      0);
  ASSERT_EQ(::listen(listen_fd, 0), 0);  // minimal backlog, never accepted
  socklen_t len = sizeof(addr);
  ASSERT_EQ(
      ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len),
      0);
  const std::uint16_t port = ntohs(addr.sin_port);
  std::vector<int> fillers;
  for (int i = 0; i < 4; ++i) {
    const int fd = service::connect_loopback(
        port, std::chrono::steady_clock::now() + 50ms);
    if (fd >= 0) fillers.push_back(fd);
  }

  cluster::BackendClient client(port, 4, /*dial_timeout_ms=*/100.0);
  cluster::HealthMonitor::Options opts;
  opts.interval_s = 30.0;
  opts.ping_timeout_ms = 150.0;
  cluster::HealthMonitor monitor({&client}, opts);

  const auto t0 = std::chrono::steady_clock::now();
  monitor.probe_now();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Whether the dial timed out in the SYN queue or the ping timed out
  // unanswered, the probe is bounded by its deadlines — seconds would
  // mean we fell back into the kernel's connect timeout.
  EXPECT_LT(elapsed_s, 2.0);
  EXPECT_GE(monitor.health(0).probe_failures, 1u);

  for (const int fd : fillers) ::close(fd);
  ::close(listen_fd);
}

// ------------------------------------------- health: probe/traffic races

// Regression: a probe that started before a markdown could come back `ok`
// after traffic discovered the backend dead, and resurrected it with
// stale evidence. finish_probe must discard any result whose epoch token
// predates the markdown.
TEST(HealthMonitor, StaleProbeResultCannotResurrectAMarkedDownBackend) {
  cluster::BackendClient client(dead_port());
  cluster::HealthMonitor::Options opts;
  opts.down_after = 2;
  cluster::HealthMonitor monitor({&client}, opts);

  // A probe is in flight...
  const auto token = monitor.begin_probe(0);
  // ...when traffic discovers the backend is dead.
  monitor.report_failure(0);
  monitor.report_failure(0);
  ASSERT_FALSE(monitor.up(0));

  // The probe's `ok` lands late: its evidence predates the markdown.
  monitor.finish_probe(0, /*ok=*/true, token);
  EXPECT_FALSE(monitor.up(0));
  EXPECT_EQ(monitor.health(0).stale_probes, 1u);

  // A probe begun under the current epoch may resurrect it.
  const auto fresh = monitor.begin_probe(0);
  monitor.finish_probe(0, /*ok=*/true, fresh);
  EXPECT_TRUE(monitor.up(0));
}

TEST(HealthMonitor, ConcurrentTrafficReportsAndProbesConverge) {
  // TSan coverage for the epoch handshake: traffic reports hammer a
  // backend from several threads while the probe loop runs full-tilt.
  // No assertion beyond convergence — the value is the race detector.
  LiveServer live;
  cluster::BackendClient client(live.port);
  cluster::HealthMonitor::Options opts;
  opts.interval_s = 0.005;
  opts.down_after = 2;
  opts.ping_timeout_ms = 500.0;
  cluster::HealthMonitor monitor({&client}, opts);
  monitor.start();

  std::vector<std::thread> reporters;
  for (int t = 0; t < 4; ++t)
    reporters.emplace_back([&monitor, t] {
      for (int i = 0; i < 1000; ++i) {
        if ((i + t) % 3 == 0)
          monitor.report_failure(0);
        else
          monitor.report_success(0);
      }
    });
  for (int i = 0; i < 10; ++i) monitor.probe_now();
  for (auto& t : reporters) t.join();
  monitor.stop();

  // The backend is actually alive; once the flapping stops one success
  // observation settles the state.
  monitor.report_success(0);
  EXPECT_TRUE(monitor.up(0));
}

// ------------------------------------- pipeline: FIFO reclamation paths

// Regression: a pipe whose backend accepted the forwards and then never
// answered (and no per-request deadline to bail us out) kept its FIFO
// entries forever — clients hung and the pipe never failed over. The
// stall watchdog now tears the pipe down and fails the whole FIFO over.
TEST(RouterPipeline, StallWatchdogReclaimsABlackholedPipe) {
  SilentBackend blackhole;
  LiveServer live;
  auto opts = router_options({blackhole.port, live.port});
  opts.backend_deadline_ms = 0.0;  // no deadline: the watchdog is the
  opts.pipe_stall_ms = 300.0;      // only way out
  opts.stall_grace_ms = 100.0;
  LiveRouter router(opts);

  const auto mine = lines_owned_by(router.router, 0, 6);
  ASSERT_GE(mine.size(), 2u);
  RawClient conn(router.port);
  ASSERT_TRUE(conn.send_lines(mine));
  for (std::size_t i = 0; i < mine.size(); ++i) {
    const auto reply = conn.read_line(10s);
    ASSERT_TRUE(reply) << "reply " << i << " never arrived";
    EXPECT_EQ(service::parse_response(*reply).status,
              service::Response::Status::kOk)
        << *reply;
  }
  const auto rs = router.router.stats();
  EXPECT_GE(rs.pipe_stalls, 1u);
  EXPECT_GE(rs.failovers, 1u);
  // Leak gauges: everything the watchdog reclaimed must be accounted.
  for (int i = 0; i < 500 && (router.router.stats().pending != 0 ||
                              router.router.stats().backend_inflight != 0);
       ++i)
    std::this_thread::sleep_for(10ms);
  EXPECT_EQ(router.router.stats().pending, 0u);
  EXPECT_EQ(router.router.stats().backend_inflight, 0u);
}

// Regression: when a hedge won, the loser's FIFO entry on the slow pipe
// stayed in flight forever (the pipe was healthy enough to dial, just
// never answered). The entry must be reclaimed — here by the watchdog
// tearing down the silent pipe — and the gauges must drain to zero.
TEST(RouterPipeline, HedgeWinLeavesNoLeakedFifoEntries) {
  SilentBackend blackhole;
  LiveServer live;
  auto opts = router_options({blackhole.port, live.port});
  opts.hedge_ms = 50.0;        // hedge answers the client fast...
  opts.pipe_stall_ms = 1000.0; // ...the watchdog reclaims the loser
  opts.stall_grace_ms = 100.0;
  LiveRouter router(opts);

  const auto mine = lines_owned_by(router.router, 0, 4);
  ASSERT_GE(mine.size(), 2u);
  RawClient conn(router.port);
  ASSERT_TRUE(conn.send_lines(mine));
  for (std::size_t i = 0; i < mine.size(); ++i) {
    const auto reply = conn.read_line(10s);
    ASSERT_TRUE(reply) << "reply " << i << " never arrived";
    EXPECT_EQ(service::parse_response(*reply).status,
              service::Response::Status::kOk)
        << *reply;
  }
  const auto rs = router.router.stats();
  EXPECT_GE(rs.hedges, 1u);
  EXPECT_GE(rs.hedge_wins, 1u);
  for (int i = 0; i < 500 && (router.router.stats().pending != 0 ||
                              router.router.stats().backend_inflight != 0);
       ++i)
    std::this_thread::sleep_for(10ms);
  EXPECT_EQ(router.router.stats().pending, 0u);
  EXPECT_EQ(router.router.stats().backend_inflight, 0u);
  EXPECT_GE(router.router.stats().pipe_stalls, 1u);
}

}  // namespace
