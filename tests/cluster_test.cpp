// Tests for the cluster layer: the consistent-hash ShardMap, the pooled
// BackendClient, HealthMonitor markdown/recovery, and end-to-end router
// smoke tests (routed responses bit-identical to direct serving, disjoint
// backend cache shards, transparent failover when a backend dies). The
// ClusterSmoke suite runs real in-process Server fleets and is included
// in the tier-1 TSan leg.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/backend_client.h"
#include "cluster/health_monitor.h"
#include "cluster/router.h"
#include "cluster/shard_map.h"
#include "service/framing.h"
#include "service/request.h"
#include "service/server.h"

namespace {

using namespace tecfan;
using namespace std::chrono_literals;

// ---------------------------------------------------------------- shard map

std::vector<std::string> sample_keys(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  const char* workloads[] = {"water", "cholesky", "lu", "fmm", "volrend"};
  std::size_t i = 0;
  while (keys.size() < n) {
    service::Request r;
    r.kind = service::RequestKind::kEquilibrium;
    r.workload = workloads[i % 5];
    r.threads = (i / 5) % 2 ? 16 : 4;
    r.fan = static_cast<int>(i % 8);
    r.dvfs = static_cast<int>((i / 8) % 4);
    keys.push_back(service::canonical_key(r));
    ++i;
    if (i > 10 * n) break;  // workload/fan/dvfs grid exhausted
  }
  return keys;
}

TEST(ShardMap, HashIsStableAcrossProcessesAndBuilds) {
  // FNV-1a 64 golden values: the ring layout must never depend on
  // std::hash or the build, or a router restart remaps every key.
  EXPECT_EQ(cluster::stable_hash(""), 14695981039346656037ull);
  EXPECT_EQ(cluster::stable_hash("a"), 12638187200555641996ull);
  EXPECT_EQ(cluster::stable_hash("backend-0#0"),
            cluster::stable_hash(std::string("backend-0#0")));
  EXPECT_NE(cluster::stable_hash("backend-0#0"),
            cluster::stable_hash("backend-0#1"));
}

TEST(ShardMap, OwnerIsDeterministicAcrossInstances) {
  const cluster::ShardMap a(4), b(4);
  for (const auto& key : sample_keys(64)) {
    EXPECT_EQ(a.owner(key), b.owner(key)) << key;
    EXPECT_LT(a.owner(key), 4u);
  }
}

TEST(ShardMap, EveryBackendOwnsAShare) {
  const cluster::ShardMap map(4, 64);
  const auto keys = sample_keys(320);
  std::map<std::size_t, std::size_t> share;
  for (const auto& key : keys) ++share[map.owner(key)];
  ASSERT_EQ(share.size(), 4u);  // no empty shard with 64 vnodes
  for (const auto& [backend, count] : share) {
    // Loose balance bounds: FNV + 64 vnodes keeps shards within a few x.
    EXPECT_GE(count, keys.size() / 20) << "backend " << backend;
    EXPECT_LE(count, keys.size() * 6 / 10) << "backend " << backend;
  }
}

TEST(ShardMap, ReplicaChainIsDistinctAndStartsAtOwner) {
  const cluster::ShardMap map(4);
  for (const auto& key : sample_keys(32)) {
    const auto chain = map.replica_chain(key);
    ASSERT_EQ(chain.size(), 4u);
    EXPECT_EQ(chain[0], map.owner(key));
    std::set<std::size_t> distinct(chain.begin(), chain.end());
    EXPECT_EQ(distinct.size(), 4u) << key;

    const auto truncated = map.replica_chain(key, 2);
    ASSERT_EQ(truncated.size(), 2u);
    EXPECT_EQ(truncated[0], chain[0]);
    EXPECT_EQ(truncated[1], chain[1]);
  }
}

TEST(ShardMap, FleetGrowthMovesOnlyAMinorityOfKeys) {
  // Consistent hashing's point: going 4 -> 5 backends should move ~1/5 of
  // keys (to the new backend only), not reshuffle everything. Allow
  // generous slack for virtual-node variance.
  const cluster::ShardMap before(4), after(5);
  const auto keys = sample_keys(320);
  std::size_t moved = 0, moved_elsewhere = 0;
  for (const auto& key : keys) {
    const std::size_t a = before.owner(key), b = after.owner(key);
    if (a != b) {
      ++moved;
      if (b != 4) ++moved_elsewhere;  // moved to an OLD backend: forbidden
    }
  }
  EXPECT_EQ(moved_elsewhere, 0u);
  EXPECT_LT(moved, keys.size() / 2);
  EXPECT_GT(moved, 0u);  // the new backend did take some share
}

// ----------------------------------------------------------- backend client

service::ServerOptions small_server_options() {
  service::ServerOptions o;
  o.tiles_x = 2;
  o.tiles_y = 2;
  o.workers = 2;
  o.queue_capacity = 8;
  o.cache_capacity = 64;
  o.max_sim_time_s = 0.05;
  return o;
}

/// A Server bound to an ephemeral port with its accept loop running.
struct LiveServer {
  explicit LiveServer(service::ServerOptions options = small_server_options())
      : server(std::make_unique<service::Server>(options)) {
    port = server->bind_listen(0);
    thread = std::thread([this] { server->serve(); });
  }
  ~LiveServer() { shutdown(); }
  void shutdown() {
    if (server) server->stop();
    if (thread.joinable()) thread.join();
  }
  /// Stop and destroy the server, closing its listening port (the fleet
  /// member "dies"; the port stays free for the failover tests).
  void kill() {
    shutdown();
    server.reset();
  }

  std::unique_ptr<service::Server> server;
  std::uint16_t port = 0;
  std::thread thread;
};

/// A listening socket that accepts connections and reads forever but
/// never replies — a backend that dials fine yet stalls every request.
struct SilentBackend {
  SilentBackend() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd, 16), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port = ntohs(addr.sin_port);
    thread = std::thread([this] {
      while (!stop.load()) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) break;  // listen_fd closed by the destructor
        std::lock_guard<std::mutex> lock(mu);
        conn_fds.push_back(fd);
      }
    });
  }
  ~SilentBackend() {
    stop.store(true);
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
    if (thread.joinable()) thread.join();
    for (const int fd : conn_fds) ::close(fd);
  }

  int listen_fd = -1;
  std::uint16_t port = 0;
  std::atomic<bool> stop{false};
  std::mutex mu;
  std::vector<int> conn_fds;
  std::thread thread;
};

/// Bind-then-close: a loopback port with nothing listening on it.
std::uint16_t dead_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST(BackendClient, RoundTripReusesPooledConnections) {
  LiveServer backend;
  cluster::BackendClient client(backend.port);

  const auto r1 = client.round_trip("ping");
  ASSERT_TRUE(r1);
  EXPECT_EQ(r1->rfind("ok", 0), 0u) << *r1;
  const auto r2 = client.round_trip("ping");
  ASSERT_TRUE(r2);
  EXPECT_EQ(*r1, *r2);

  const auto s = client.stats();
  EXPECT_EQ(s.dials, 1u);  // second round trip reused the pooled conn
  EXPECT_EQ(s.reuses, 1u);
  EXPECT_EQ(s.abandons, 0u);
  EXPECT_EQ(s.idle, 1u);

  client.close_idle();
  EXPECT_EQ(client.stats().idle, 0u);
}

TEST(BackendClient, DialFailureIsACleanMiss) {
  cluster::BackendClient client(dead_port());
  auto lease = client.lease();
  EXPECT_FALSE(lease.valid());
  EXPECT_FALSE(client.round_trip("ping",
                                 std::chrono::steady_clock::now() + 100ms));
  EXPECT_GE(client.stats().dial_failures, 2u);
  EXPECT_EQ(client.stats().idle, 0u);
}

TEST(BackendClient, DeadlineTimeoutAbandonsTheConnection) {
  // The backend accepts and stalls: the read must time out at the
  // deadline and the connection must NOT go back to the pool (a late
  // reply on a reused connection would answer the wrong request).
  SilentBackend backend;
  cluster::BackendClient client(backend.port);
  const auto reply = client.round_trip(
      "ping", std::chrono::steady_clock::now() + 50ms);
  EXPECT_FALSE(reply);
  const auto s = client.stats();
  EXPECT_EQ(s.dials, 1u);
  EXPECT_EQ(s.abandons, 1u);
  EXPECT_EQ(s.idle, 0u);
}

// ------------------------------------------------------------ health monitor

TEST(HealthMonitor, TrafficReportsMarkDownAndRecover) {
  // No monitor thread: pure traffic-path observations.
  cluster::BackendClient client(dead_port());
  cluster::HealthMonitor::Options opts;
  opts.down_after = 2;
  cluster::HealthMonitor monitor({&client}, opts);

  EXPECT_TRUE(monitor.up(0));  // optimistic start
  monitor.report_failure(0);
  EXPECT_TRUE(monitor.up(0));  // one failure is not a markdown
  monitor.report_failure(0);
  EXPECT_FALSE(monitor.up(0));
  EXPECT_EQ(monitor.up_count(), 0u);
  EXPECT_EQ(monitor.health(0).markdowns, 1u);

  monitor.report_success(0);  // first success marks up immediately
  EXPECT_TRUE(monitor.up(0));
  EXPECT_EQ(monitor.up_count(), 1u);
}

TEST(HealthMonitor, ProbesMarkDeadBackendDownAndLiveBackendUp) {
  LiveServer live;
  cluster::BackendClient up_client(live.port);
  cluster::BackendClient down_client(dead_port());

  cluster::HealthMonitor::Options opts;
  opts.interval_s = 0.01;
  opts.down_after = 2;
  opts.ping_timeout_ms = 200.0;
  cluster::HealthMonitor monitor({&up_client, &down_client}, opts);
  monitor.start();

  monitor.probe_now();
  monitor.probe_now();  // second consecutive failure => markdown

  EXPECT_TRUE(monitor.up(0));
  EXPECT_FALSE(monitor.up(1));
  EXPECT_EQ(monitor.up_count(), 1u);

  const auto healthy = monitor.health(0);
  EXPECT_GE(healthy.probes, 2u);
  EXPECT_EQ(healthy.probe_failures, 0u);
  EXPECT_GT(healthy.last_rtt_us, 0.0);
  const auto dead = monitor.health(1);
  EXPECT_GE(dead.probe_failures, 2u);
  EXPECT_EQ(dead.markdowns, 1u);
  monitor.stop();
}

TEST(HealthMonitor, RestartedBackendIsMarkedUpAgain) {
  auto backend = std::make_unique<LiveServer>();
  const std::uint16_t port = backend->port;
  cluster::BackendClient client(port);

  cluster::HealthMonitor::Options opts;
  opts.interval_s = 0.01;
  opts.down_after = 1;
  opts.backoff_base_s = 0.01;
  opts.backoff_max_s = 0.05;
  cluster::HealthMonitor monitor({&client}, opts);
  monitor.start();
  monitor.probe_now();
  ASSERT_TRUE(monitor.up(0));

  backend->kill();
  client.close_idle();  // pooled conns to the dead server are stale
  monitor.probe_now();
  ASSERT_FALSE(monitor.up(0));

  // Same port, new process (well, new Server): the monitor must notice.
  service::Server revived(small_server_options());
  ASSERT_EQ(revived.bind_listen(port), port);
  std::thread serving([&revived] { revived.serve(); });
  for (int i = 0; i < 100 && !monitor.up(0); ++i) monitor.probe_now();
  EXPECT_TRUE(monitor.up(0));
  monitor.stop();
  revived.stop();
  serving.join();
}

// ------------------------------------------------------------ router smoke

cluster::RouterOptions router_options(
    const std::vector<std::uint16_t>& ports) {
  cluster::RouterOptions o;
  o.backend_ports = ports;
  o.health.interval_s = 0.05;
  o.health.ping_timeout_ms = 500.0;
  return o;
}

std::vector<std::string> distinct_requests(std::size_t n) {
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < n; ++i)
    lines.push_back("equilibrium workload=water threads=4 fan=" +
                    std::to_string(i % 7) + " dvfs=" + std::to_string(i / 7));
  return lines;
}

TEST(ClusterSmoke, ControlVerbsAreAnsweredLocally) {
  LiveServer b0, b1;
  cluster::Router router(router_options({b0.port, b1.port}));

  bool quit = false;
  const auto pong = service::parse_response(router.handle_line("ping", &quit));
  EXPECT_EQ(pong.field("pong"), std::optional<std::string>("1"));
  EXPECT_FALSE(quit);

  const auto stats =
      service::parse_response(router.handle_line("stats", &quit));
  ASSERT_EQ(stats.status, service::Response::Status::kOk);
  EXPECT_EQ(stats.field("name"), std::optional<std::string>("tecrouter"));
  EXPECT_EQ(stats.field("backends"), std::optional<std::string>("2"));
  EXPECT_EQ(stats.field("backend0_port"),
            std::optional<std::string>(std::to_string(b0.port)));

  const auto bye = service::parse_response(router.handle_line("quit", &quit));
  EXPECT_EQ(bye.field("bye"), std::optional<std::string>("1"));
  EXPECT_TRUE(quit);

  // None of those touched a backend.
  EXPECT_EQ(router.stats().routed, 0u);
  EXPECT_EQ(router.stats().local, 3u);
}

TEST(ClusterSmoke, RoutedRepliesAreBitIdenticalToDirectServing) {
  LiveServer b0, b1;
  cluster::Router router(router_options({b0.port, b1.port}));
  service::Server direct(small_server_options());  // reference: no fleet

  const auto requests = distinct_requests(8);
  std::vector<std::string> first_pass;
  for (const auto& line : requests) {
    const std::string routed = router.handle_line(line);
    const auto parsed = service::parse_response(routed);
    ASSERT_EQ(parsed.status, service::Response::Status::kOk) << routed;
    EXPECT_FALSE(parsed.cached) << routed;

    // Same solver, same floorplan => the routed reply must match a direct
    // Server field for field (the fleet is an implementation detail).
    const auto ref = direct.handle(
        service::parse_request(line).request);
    EXPECT_EQ(parsed.field("peak_t_c"), ref.field("peak_t_c")) << line;
    EXPECT_EQ(parsed.field("peak_t_k"), ref.field("peak_t_k")) << line;
    first_pass.push_back(routed);
  }

  // Second pass: every reply is a cache hit on its owning shard, and the
  // payload matches the miss-path reply except for the cached flag.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::string routed = router.handle_line(requests[i]);
    const auto parsed = service::parse_response(routed);
    ASSERT_EQ(parsed.status, service::Response::Status::kOk) << routed;
    EXPECT_TRUE(parsed.cached) << routed;
    const auto miss = service::parse_response(first_pass[i]);
    EXPECT_EQ(parsed.field("peak_t_c"), miss.field("peak_t_c"));
    EXPECT_EQ(parsed.field("energy_j"), miss.field("energy_j"));
  }

  // Sharding is disjoint: each key computed exactly once fleet-wide, on
  // the backend the ShardMap names as its owner.
  const auto s0 = b0.server->stats(), s1 = b1.server->stats();
  EXPECT_EQ(s0.computes + s1.computes, requests.size());
  EXPECT_EQ(s0.cache.hits + s1.cache.hits, requests.size());
  std::size_t owned0 = 0;
  for (const auto& line : requests)
    if (router.shards().owner(service::canonical_key(
            service::parse_request(line).request)) == 0)
      ++owned0;
  EXPECT_EQ(s0.computes, owned0);

  const auto rs = router.stats();
  EXPECT_EQ(rs.routed, 2 * requests.size());
  EXPECT_EQ(rs.failovers, 0u);
  EXPECT_EQ(rs.errors, 0u);
}

TEST(ClusterSmoke, FailoverOnBackendDeathIsInvisibleToClients) {
  LiveServer b0, b1;
  auto opts = router_options({b0.port, b1.port});
  opts.health.down_after = 2;
  cluster::Router router(opts);

  // Find a request owned by each backend, then warm both.
  std::string owned_by[2];
  for (const auto& line : distinct_requests(16)) {
    const auto key =
        service::canonical_key(service::parse_request(line).request);
    owned_by[router.shards().owner(key)] = line;
  }
  ASSERT_FALSE(owned_by[0].empty());
  ASSERT_FALSE(owned_by[1].empty());
  for (const auto& line : owned_by)
    ASSERT_EQ(service::parse_response(router.handle_line(line)).status,
              service::Response::Status::kOk);

  // Kill backend 0. The next request for its key must fail over to
  // backend 1 with NO client-visible error: the traffic path reports the
  // failure and the retry lands on the replica.
  b0.kill();
  const auto failed_over =
      service::parse_response(router.handle_line(owned_by[0]));
  EXPECT_EQ(failed_over.status, service::Response::Status::kOk)
      << failed_over.error;
  EXPECT_GE(router.stats().failovers, 1u);
  EXPECT_EQ(router.stats().errors, 0u);

  // Health converges: probes mark the dead backend down, after which its
  // keys route straight to the replica with no per-request retry.
  router.health().probe_now();
  router.health().probe_now();
  EXPECT_FALSE(router.health().up(0));
  const std::uint64_t failovers_before = router.stats().failovers;
  const auto rerouted =
      service::parse_response(router.handle_line(owned_by[0]));
  EXPECT_EQ(rerouted.status, service::Response::Status::kOk);
  EXPECT_TRUE(rerouted.cached);  // the replica computed it during failover
  EXPECT_EQ(router.stats().failovers, failovers_before);
  EXPECT_EQ(router.stats().errors, 0u);

  // The survivor still answers its own keys.
  EXPECT_EQ(service::parse_response(router.handle_line(owned_by[1])).status,
            service::Response::Status::kOk);
}

TEST(ClusterSmoke, AllBackendsDownYieldsAnErrorNotAHang) {
  auto opts = router_options({dead_port()});
  opts.health.down_after = 1;
  cluster::Router router(opts);
  router.health().probe_now();
  EXPECT_EQ(router.health().up_count(), 0u);

  const auto r = service::parse_response(
      router.handle_line("equilibrium workload=water threads=4 fan=1"));
  EXPECT_EQ(r.status, service::Response::Status::kError);
  EXPECT_NE(r.error.find("no backend"), std::string::npos) << r.error;
  EXPECT_GE(router.stats().errors, 1u);
}

TEST(ClusterSmoke, HedgeFiresWhenThePrimaryStalls) {
  // Primary shard: accepts and never answers. Replica: a real server.
  // With a fixed 10ms hedge delay the router must answer from the replica
  // while the primary is still silent.
  SilentBackend stalled;
  LiveServer live;
  auto opts = router_options({stalled.port, live.port});
  opts.hedge_ms = 10.0;
  opts.health.interval_s = 30.0;   // keep probes out of the way
  opts.health.down_after = 1000;   // the stalled backend must stay "up"
  cluster::Router router(opts);

  // A request whose canonical key is owned by the stalled backend.
  std::string stalled_line;
  for (const auto& line : distinct_requests(32)) {
    const auto key =
        service::canonical_key(service::parse_request(line).request);
    if (router.shards().owner(key) == 0) {
      stalled_line = line;
      break;
    }
  }
  ASSERT_FALSE(stalled_line.empty());
  EXPECT_GT(router.current_hedge_delay_us(), 0.0);

  const auto r = service::parse_response(router.handle_line(stalled_line));
  EXPECT_EQ(r.status, service::Response::Status::kOk) << r.error;
  const auto rs = router.stats();
  EXPECT_GE(rs.hedges, 1u);
  EXPECT_GE(rs.hedge_wins, 1u);
  EXPECT_EQ(rs.errors, 0u);
}

TEST(ClusterSmoke, TcpEndToEndThroughTheRouter) {
  LiveServer b0, b1;
  cluster::Router router(router_options({b0.port, b1.port}));
  const std::uint16_t port = router.bind_listen(0);
  std::thread serving([&router] { router.serve(); });

  // Concurrent client sessions through the router's TCP front door, each
  // reusing the line protocol exactly as against a single tecfand.
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([port, c, &failures] {
      cluster::BackendClient conn(port);  // plain line-protocol client
      for (int i = 0; i < 4; ++i) {
        const auto reply = conn.round_trip(
            "equilibrium workload=water threads=4 fan=" +
                std::to_string((c + i) % 7),
            std::chrono::steady_clock::now() + 30s);
        if (!reply || reply->rfind("ok", 0) != 0) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  router.stop();
  serving.join();
  EXPECT_GE(router.stats().requests, 12u);
  // The router's own per-stage histograms saw every routed request.
  bool saw_route = false;
  for (const auto& [name, snap] : router.metrics().histograms())
    if (name == "route") {
      saw_route = true;
      EXPECT_GE(snap.count, 12u);
    }
  EXPECT_TRUE(saw_route);
}

}  // namespace
