// Full-stack integration tests on the calibrated 16-core system: Table I
// reproduction within tolerance and the qualitative orderings the paper's
// evaluation rests on. These are the slowest tests in the suite (~1 min).
#include <gtest/gtest.h>

#include <memory>

#include "core/reactive_policies.h"
#include "core/tecfan_policy.h"
#include "perf/splash2.h"
#include "sim/chip_engine.h"
#include "sim/chip_simulator.h"
#include "sim/experiment.h"
#include "util/units.h"

namespace tecfan::sim {
namespace {

const ChipEnginePtr& engine() {
  static const ChipEnginePtr e = make_default_chip_engine();
  return e;
}

ChipModels& models() {
  static ChipModels m = engine()->models();
  return m;
}

ChipSimulator& simulator() {
  static ChipSimulator sim(engine());
  return sim;
}

perf::WorkloadPtr workload(const std::string& bench, int threads) {
  return engine()->workload(bench, threads);
}

struct BaselineBundle {
  RunResult base;
  RunResult fan_tec;
  RunResult fan_dvfs;
  RunResult tecfan;
};

// One shared cholesky/16t sweep set reused by several tests.
const BaselineBundle& cholesky_bundle() {
  static const BaselineBundle bundle = [] {
    BaselineBundle b;
    auto wl = workload("cholesky", 16);
    b.base = measure_base_scenario(simulator(), *wl);
    SweepOptions opts;
    opts.threshold_k = b.base.peak_temp_k;
    b.fan_tec = run_with_fan_sweep(
                    simulator(),
                    [] { return std::make_unique<core::FanTecPolicy>(); },
                    *wl, opts)
                    .chosen;
    b.fan_dvfs = run_with_fan_sweep(
                     simulator(),
                     [] { return std::make_unique<core::FanDvfsPolicy>(); },
                     *wl, opts)
                     .chosen;
    SweepOptions tf_opts = opts;
    tf_opts.max_mean_dvfs = 0.5;
    b.tecfan = run_with_fan_sweep(
                   simulator(),
                   [] { return std::make_unique<core::TecFanPolicy>(); },
                   *wl, tf_opts)
                   .chosen;
    return b;
  }();
  return bundle;
}

class Table1Calibration
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(Table1Calibration, ReproducesPaperNumbers) {
  const auto [name, threads] = GetParam();
  auto wl = workload(name, threads);
  const auto& spec = perf::table1_case(name, threads);
  const RunResult base = measure_base_scenario(simulator(), *wl);
  EXPECT_TRUE(base.completed);
  // Execution time within interval quantization of the paper's timing.
  EXPECT_NEAR(base.exec_time_s * 1e3, spec.time_ms, 4.0) << wl->name();
  // Chip power within 5%.
  EXPECT_NEAR(base.avg_power.chip_w(), spec.power_w, 0.05 * spec.power_w)
      << wl->name();
  // Peak temperature within 2% in kelvin (the 4-thread hot-cluster cases
  // carry the largest deviation; see EXPERIMENTS.md).
  const double peak_paper_k = celsius_to_kelvin(spec.peak_temp_c);
  EXPECT_NEAR(base.peak_temp_k, peak_paper_k, 0.02 * peak_paper_k)
      << wl->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, Table1Calibration,
    ::testing::Values(std::make_pair("cholesky", 16),
                      std::make_pair("cholesky", 4),
                      std::make_pair("fmm", 16), std::make_pair("fmm", 4),
                      std::make_pair("volrend", 16),
                      std::make_pair("water", 4), std::make_pair("lu", 16),
                      std::make_pair("lu", 4)));

TEST(Table1Ordering, PeakTemperatureOrderMatchesPaper) {
  // 16-thread: cholesky > lu > volrend > fmm.
  auto peak = [&](const char* name, int threads) {
    auto wl = workload(name, threads);
    return measure_base_scenario(simulator(), *wl).peak_temp_k;
  };
  const double chol = peak("cholesky", 16);
  const double lu = peak("lu", 16);
  const double vol = peak("volrend", 16);
  const double fmm = peak("fmm", 16);
  EXPECT_GT(chol, lu);
  EXPECT_GT(lu, vol);
  EXPECT_GT(vol, fmm);
}

TEST(Figure4, TecRecoversSecondFanLevel) {
  // The Fig. 4 mechanism on cholesky/16t: level 2 alone violates, level 2
  // plus TECs restores roughly level-1 cooling, at far less cooling power.
  const auto& b = cholesky_bundle();
  auto wl = workload("cholesky", 16);
  RunConfig cfg;
  cfg.threshold_k = b.base.peak_temp_k;
  cfg.fan_level = 1;
  core::FanOnlyPolicy fan_only;
  const RunResult only = simulator().run(fan_only, *wl, cfg);
  EXPECT_GT(only.mean_peak_temp_k, b.base.peak_temp_k + 1.0);
  core::FanTecPolicy fan_tec;
  const RunResult tec = simulator().run(fan_tec, *wl, cfg);
  EXPECT_LT(tec.mean_peak_temp_k, b.base.peak_temp_k + 0.2);
  const double cooling_l1 = models().fan.power_w(0);
  const double cooling_l2_tec =
      models().fan.power_w(1) + tec.avg_power.tec_w;
  EXPECT_LT(cooling_l2_tec, 0.6 * cooling_l1);
}

TEST(Figure56, PolicyOrderingsMatchPaper) {
  const auto& b = cholesky_bundle();
  // Delay: Fan+TEC none; TECfan a few percent; Fan+DVFS large.
  EXPECT_NEAR(b.fan_tec.exec_time_s / b.base.exec_time_s, 1.0, 1e-9);
  EXPECT_LT(b.tecfan.exec_time_s / b.base.exec_time_s, 1.10);
  EXPECT_GT(b.fan_dvfs.exec_time_s / b.base.exec_time_s, 1.40);
  // Power: Fan+DVFS saves the most.
  EXPECT_LT(b.fan_dvfs.avg_total_power_w(), b.tecfan.avg_total_power_w());
  EXPECT_LT(b.tecfan.avg_total_power_w(), b.base.avg_total_power_w());
  // Energy: every policy beats the base scenario.
  EXPECT_LT(b.fan_tec.energy_j, b.base.energy_j);
  EXPECT_LT(b.tecfan.energy_j, b.base.energy_j);
  EXPECT_LT(b.fan_dvfs.energy_j, b.base.energy_j);
  // EDP: TECfan beats the DVFS-heavy policy and the base scenario.
  EXPECT_LT(b.tecfan.edp(), b.fan_dvfs.edp());
  EXPECT_LT(b.tecfan.edp(), b.base.edp());
  // Violations: TECfan under the paper's 0.5% bound.
  EXPECT_LT(b.tecfan.violation_frac, 0.005);
}

TEST(Figure56, TecfanRarelyThrottles) {
  const auto& b = cholesky_bundle();
  EXPECT_LT(b.tecfan.avg_dvfs, 0.5);        // "rarely lowers the DVFS level"
  EXPECT_GT(b.fan_dvfs.avg_dvfs, 2.0);      // deep sustained throttling
}

TEST(VolrendCase, UniformWorkloadFavoursDvfsOverTec) {
  // The paper's volrend observation: with uniform power density, Fan+DVFS
  // cools better than Fan+TEC at the same fan level.
  auto wl = workload("volrend", 16);
  const RunResult base = measure_base_scenario(simulator(), *wl);
  RunConfig cfg;
  cfg.threshold_k = base.peak_temp_k;
  cfg.fan_level = 2;
  cfg.max_sim_time_s = 2.0;
  core::FanTecPolicy fan_tec;
  const RunResult tec = simulator().run(fan_tec, *wl, cfg);
  core::FanDvfsPolicy fan_dvfs;
  const RunResult dvfs = simulator().run(fan_dvfs, *wl, cfg);
  EXPECT_LT(dvfs.mean_peak_temp_k, tec.mean_peak_temp_k + 0.5);
}

}  // namespace
}  // namespace tecfan::sim
