#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "perf/server_model.h"
#include "perf/splash2.h"
#include "perf/wikipedia_trace.h"
#include "power/dvfs.h"
#include "util/error.h"
#include "util/stats.h"

namespace tecfan::perf {
namespace {

struct Models {
  thermal::Floorplan fp = thermal::Floorplan::scc();
  power::DynamicPowerModel dyn = power::DynamicPowerModel::scc_calibrated();
  power::QuadraticLeakageModel leak =
      power::QuadraticLeakageModel::matched_to(power::LinearLeakageModel{});
};

const Models& models() {
  static const Models m;
  return m;
}

SyntheticSplash make(const std::string& bench, int threads) {
  return SyntheticSplash(table1_case(bench, threads), models().fp,
                         models().dyn, models().leak);
}

// --------------------------------------------------------------- table I
TEST(Table1, HasAllEightCases) {
  EXPECT_EQ(table1_cases().size(), 8u);
  std::set<std::string> names;
  for (const auto& c : table1_cases()) names.insert(c.benchmark);
  EXPECT_EQ(names.size(), 5u);  // cholesky fmm volrend water lu
  EXPECT_THROW(table1_case("raytrace", 16), precondition_error);
  EXPECT_THROW(table1_case("water", 16), precondition_error);  // only 4t
}

// --------------------------------------------------- synthetic workloads
class AllTable1Cases
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(AllTable1Cases, IpsAnchoredToPaperTiming) {
  const auto [name, threads] = GetParam();
  const SyntheticSplash wl = make(name, threads);
  const auto& spec = wl.spec();
  // instructions_per_core / base_ips == paper execution time.
  EXPECT_NEAR(wl.instructions_per_core() / wl.base_ips_per_core(),
              spec.time_ms * 1e-3, 1e-12);
  EXPECT_NEAR(wl.instructions_per_core() * threads, spec.instructions, 1);
}

TEST_P(AllTable1Cases, ActiveCoreCountMatchesThreads) {
  const auto [name, threads] = GetParam();
  const SyntheticSplash wl = make(name, threads);
  int active = 0;
  for (int c = 0; c < models().fp.core_count(); ++c)
    if (wl.core_active(c)) ++active;
  EXPECT_EQ(active, threads);
}

TEST_P(AllTable1Cases, ActivityAlwaysInUnitRange) {
  const auto [name, threads] = GetParam();
  const SyntheticSplash wl = make(name, threads);
  for (int core : {0, 5, 15}) {
    for (int k = 0; k < thermal::kComponentsPerTile; ++k) {
      for (double t = 0.0; t < 0.02; t += 0.0013) {
        const double a = wl.activity(
            core, static_cast<thermal::ComponentKind>(k), t);
        EXPECT_GE(a, 0.0);
        EXPECT_LE(a, 1.0);
      }
    }
  }
}

TEST_P(AllTable1Cases, MeanChipPowerMatchesCalibrationTarget) {
  // Profile-mean dynamic power + leakage estimate == Table I power (this is
  // how the power scale is derived; the full-simulation check lives in the
  // integration test).
  const auto [name, threads] = GetParam();
  const SyntheticSplash wl = make(name, threads);
  const auto& spec = wl.spec();
  double dyn = 0.0;
  for (const auto& comp : models().fp.components()) {
    const double act = wl.core_active(comp.core)
                           ? wl.profile(comp.kind)
                           : wl.profile(comp.kind) *
                                 SyntheticSplash::kIdleActivity;
    dyn += models().dyn.component_power_w(comp, act, 1.0, wl.power_scale());
  }
  const double leak =
      models().leak.chip_leakage_w(spec.peak_temp_c + 273.15 - 8.0);
  EXPECT_NEAR(dyn + leak, spec.power_w, 0.01 * spec.power_w);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AllTable1Cases,
    ::testing::Values(std::make_pair("cholesky", 16),
                      std::make_pair("cholesky", 4),
                      std::make_pair("fmm", 16), std::make_pair("fmm", 4),
                      std::make_pair("volrend", 16),
                      std::make_pair("water", 4), std::make_pair("lu", 16),
                      std::make_pair("lu", 4)));

TEST(ExtendedCases, ProfilesExistAndAreUsable) {
  EXPECT_EQ(extended_cases().size(), 3u);
  for (const auto& c : extended_cases()) {
    const SyntheticSplash wl(c, models().fp, models().dyn, models().leak);
    EXPECT_GT(wl.power_scale(), 0.0);
    EXPECT_GT(wl.base_ips_per_core(), 0.0);
    // radix is an integer sort: no FP activity to speak of.
    if (c.benchmark == "radix") {
      EXPECT_LT(wl.profile(thermal::ComponentKind::kFpMul), 0.2);
      EXPECT_GT(wl.profile(thermal::ComponentKind::kIntExec), 0.6);
    }
    // ocean is memory-bound: L2 above the FP cluster.
    if (c.benchmark == "ocean") {
      EXPECT_GT(wl.profile(thermal::ComponentKind::kL2),
                wl.profile(thermal::ComponentKind::kFpMul));
    }
  }
  // Lookup reaches the extended set too.
  EXPECT_NO_THROW(table1_case("barnes", 16));
  EXPECT_THROW(table1_case("barnes", 4), precondition_error);
}

TEST(SyntheticSplash, DeterministicAcrossInstances) {
  const SyntheticSplash a = make("cholesky", 16);
  const SyntheticSplash b = make("cholesky", 16);
  for (double t : {0.0, 0.003, 0.017})
    EXPECT_DOUBLE_EQ(
        a.activity(3, thermal::ComponentKind::kFpMul, t),
        b.activity(3, thermal::ComponentKind::kFpMul, t));
}

TEST(SyntheticSplash, SeedChangesPhases) {
  const SyntheticSplash a(table1_case("cholesky", 16), models().fp,
                          models().dyn, models().leak, 1);
  const SyntheticSplash b(table1_case("cholesky", 16), models().fp,
                          models().dyn, models().leak, 2);
  bool differs = false;
  for (double t : {0.001, 0.004, 0.009})
    if (a.activity(0, thermal::ComponentKind::kFpMul, t) !=
        b.activity(0, thermal::ComponentKind::kFpMul, t))
      differs = true;
  EXPECT_TRUE(differs);
}

TEST(SyntheticSplash, IdleCoresAreQuietAndStatic) {
  const SyntheticSplash wl = make("cholesky", 4);
  for (int c = 0; c < 16; ++c) {
    if (wl.core_active(c)) continue;
    const double a0 = wl.activity(c, thermal::ComponentKind::kFpMul, 0.0);
    const double a1 = wl.activity(c, thermal::ComponentKind::kFpMul, 0.01);
    EXPECT_DOUBLE_EQ(a0, a1);  // no program phases on idle cores
    EXPECT_LT(a0, 0.1);
    EXPECT_DOUBLE_EQ(wl.ips_factor(c, 0.005), 0.0);
  }
}

TEST(SyntheticSplash, FourThreadMappingUsesCentreTiles) {
  const SyntheticSplash wl = make("cholesky", 4);
  // On the 4x4 grid the centre cluster is cores {5, 6, 9, 10}.
  for (int c : {5, 6, 9, 10}) EXPECT_TRUE(wl.core_active(c));
  for (int c : {0, 3, 12, 15}) EXPECT_FALSE(wl.core_active(c));
}

TEST(SyntheticSplash, CholeskyIsFpSkewedVolrendUniform) {
  const SyntheticSplash chol = make("cholesky", 16);
  const SyntheticSplash vol = make("volrend", 16);
  const double chol_skew = chol.profile(thermal::ComponentKind::kFpMul) /
                           chol.profile(thermal::ComponentKind::kL2);
  const double vol_skew = vol.profile(thermal::ComponentKind::kFpMul) /
                          vol.profile(thermal::ComponentKind::kL2);
  EXPECT_GT(chol_skew, 2.0);
  EXPECT_LT(vol_skew, 1.0);
}

TEST(SyntheticSplash, IpsFactorMeanNearOne) {
  const SyntheticSplash wl = make("fmm", 16);
  RunningStats s;
  for (double t = 0.0; t < 0.0591; t += 1e-4) s.add(wl.ips_factor(2, t));
  EXPECT_NEAR(s.mean(), 1.0, 0.03);
}

// --------------------------------------------------------------- wikipedia
TEST(WikipediaTrace, MeanDemandMatchesPaper) {
  const WikipediaTrace trace;
  EXPECT_NEAR(trace.mean_demand_40min(), 0.486, 1e-6);
}

TEST(WikipediaTrace, DeterministicInSeed) {
  const WikipediaTrace a(1.5, 7), b(1.5, 7), c(1.5, 8);
  EXPECT_DOUBLE_EQ(a.demand(1234.0), b.demand(1234.0));
  EXPECT_NE(a.demand(1234.0), c.demand(1234.0));
}

TEST(WikipediaTrace, DemandPositiveAndBounded) {
  const WikipediaTrace trace;
  for (double t = 0.0; t < WikipediaTrace::kDays * 86400.0; t += 3600.0) {
    const double d = trace.demand(t);
    EXPECT_GT(d, 0.0);
    EXPECT_LT(d, 2.0);
  }
}

TEST(WikipediaTrace, DiurnalPatternVisible) {
  // Average over the same hour across days differs between night and
  // afternoon.
  const WikipediaTrace trace;
  double night = 0.0, afternoon = 0.0;
  for (int day = 0; day < 7; ++day) {
    night += trace.demand(day * 86400.0 + 4 * 3600.0);
    afternoon += trace.demand(day * 86400.0 + 15 * 3600.0);
  }
  EXPECT_GT(afternoon, night * 1.1);
}

TEST(WikipediaTrace, CoreSegmentsAreContiguousSlices) {
  const WikipediaTrace trace;
  EXPECT_DOUBLE_EQ(trace.core_demand(0, 30.0), trace.demand(30.0));
  EXPECT_DOUBLE_EQ(trace.core_demand(2, 30.0), trace.demand(1230.0));
  EXPECT_THROW(trace.core_demand(4, 0.0), precondition_error);
  EXPECT_THROW(trace.core_demand(0, -1.0), precondition_error);
}

TEST(WikipediaTrace, ScaleAppliedMultiplicatively) {
  // Both traces are normalized to the same 40-min mean, so scale only
  // matters through the normalization path; verify construction succeeds
  // and stays positive for other scales.
  const WikipediaTrace t2(2.0, 2016, 0.6);
  EXPECT_NEAR(t2.mean_demand_40min(), 0.6, 1e-6);
}

// ------------------------------------------------------------ server model
TEST(ServerModel, CapacityConcaveAndNormalized) {
  const power::DvfsTable dvfs = power::DvfsTable::core_i7();
  const ServerCoreModel m;
  EXPECT_NEAR(m.relative_capacity(dvfs, 0), 1.0, 1e-12);
  double prev = 1.0;
  for (int l = 1; l < dvfs.level_count(); ++l) {
    const double cap = m.relative_capacity(dvfs, l);
    EXPECT_LT(cap, prev);
    // Concavity: capacity falls slower than frequency.
    EXPECT_GT(cap, dvfs.freq_scale(0, l));
    prev = cap;
  }
}

TEST(ServerModel, UtilizationAndSaturation) {
  const power::DvfsTable dvfs = power::DvfsTable::core_i7();
  const ServerCoreModel m;
  EXPECT_NEAR(m.utilization(dvfs, 0, 0.5), 0.5, 1e-12);
  EXPECT_GT(m.utilization(dvfs, dvfs.slowest_level(), 0.5), 0.5);
  EXPECT_DOUBLE_EQ(m.served(dvfs, 0, 0.5), 0.5);
  const double cap_min = m.relative_capacity(dvfs, dvfs.slowest_level());
  EXPECT_DOUBLE_EQ(m.served(dvfs, dvfs.slowest_level(), 2.0), cap_min);
  EXPECT_THROW(m.utilization(dvfs, 0, -0.1), precondition_error);
}

TEST(ServerModel, PowerMonotoneInUtilizationAndFrequency) {
  const power::DvfsTable dvfs = power::DvfsTable::core_i7();
  const ServerCoreModel m;
  EXPECT_NEAR(m.power_w(dvfs, 0, 0.0), m.idle_power_w, 1e-12);
  EXPECT_NEAR(m.power_w(dvfs, 0, 1.0), m.busy_power_top_w, 1e-12);
  EXPECT_LT(m.power_w(dvfs, 2, 0.7), m.power_w(dvfs, 0, 0.7));
  // Clamped above 1.
  EXPECT_DOUBLE_EQ(m.power_w(dvfs, 0, 1.5), m.power_w(dvfs, 0, 1.0));
}

}  // namespace
}  // namespace tecfan::perf
