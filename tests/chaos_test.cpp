// Chaos tests: every fault class from the fault model (DESIGN.md) driven
// through a real router + 2-backend fleet with fixed seeds, asserting the
// five storm invariants (see src/testing/chaos_fleet.h):
//
//   1. no client-visible protocol corruption, 2. per-connection reply
//   order, 3. per-backend worker-pool counter conservation, 4. no stuck
//   requests + router leak gauges at zero, 5. bounded memory (implied by
//   4 + the LineReader line cap), 6. trace integrity under sampling
//   (winner-only spans, no leaked ring slots).
//
// A failing storm prints its seed and counts via describe(), so the run
// replays exactly. Out-of-process faults go through ChaosProxy (one per
// backend); in-process faults go through the ScheduledFaultInjector hook
// compiled into the framing layer. The in-process storm sticks to
// semantically invisible classes (short writes, dribbled reads, delays)
// because the injector is process-global: the storm's own client sockets
// go through the same hook.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>

#include "cluster/router.h"
#include "service/fault_injection.h"
#include "testing/chaos_fleet.h"
#include "testing/chaos_proxy.h"

namespace {

// tecfan::testing clashes with gtest's ::testing under a blanket using.
namespace chaos = tecfan::testing;
using tecfan::service::ScheduledFaultInjector;
using tecfan::service::ScopedFaultInjector;

chaos::ChaosFleetOptions proxied_fleet(std::uint64_t seed) {
  chaos::ChaosFleetOptions o;
  o.backends = 2;
  o.with_proxies = true;
  o.proxy.seed = seed;
  return o;
}

chaos::StormOptions small_storm(std::uint64_t seed, bool allow_errors) {
  chaos::StormOptions o;
  o.seed = seed;
  o.clients = 3;
  o.requests_per_client = 24;
  o.pipeline_depth = 8;
  o.allow_errors = allow_errors;
  return o;
}

// ------------------------------------------------------------ baseline

TEST(Chaos, CleanProxiedFleetServesAStormFaultlessly) {
  // Proxies in the path but every fault probability zero: the harness
  // itself must not perturb the protocol.
  chaos::ChaosFleet fleet(proxied_fleet(101));
  const auto report = run_storm(fleet, small_storm(1001, false));
  EXPECT_TRUE(report.passed()) << report.describe();
  EXPECT_EQ(report.errors, 0u) << report.describe();
  EXPECT_EQ(report.requests, 72u);
}

// ------------------------------------------- connection-level fault classes

TEST(Chaos, ConnectionRefusalFailsOverCleanly) {
  auto o = proxied_fleet(102);
  o.proxy.refuse_p = 0.4;
  // Churn forces pipe re-dials the refusals can land on (the router
  // keeps one persistent pipe per backend).
  o.proxy.request_disconnect_p = 0.05;
  chaos::ChaosFleet fleet(o);
  const auto report = run_storm(fleet, small_storm(1002, true));
  EXPECT_TRUE(report.passed()) << report.describe();
}

TEST(Chaos, BlackholedFleetAnswersEveryRequestAndReclaimsItsFifos) {
  // Every connection is accepted and then never answered: the worst
  // backend. Request deadlines answer the clients; deadline + grace
  // stalls reclaim the pipe FIFOs (invariant 4's gauges prove it).
  auto o = proxied_fleet(103);
  o.proxy.blackhole_p = 1.0;
  chaos::ChaosFleet fleet(o);
  auto so = small_storm(1003, true);
  so.clients = 2;
  so.requests_per_client = 8;
  so.pipeline_depth = 4;
  const auto report = run_storm(fleet, so);
  EXPECT_TRUE(report.passed()) << report.describe();
  EXPECT_EQ(report.ok, 0u) << report.describe();  // nothing could compute
  EXPECT_EQ(report.errors, report.requests);
  EXPECT_GE(fleet.router().stats().pipe_stalls, 1u);
}

TEST(Chaos, MidlineDisconnectsFailOverWithoutCorruption) {
  auto o = proxied_fleet(104);
  o.proxy.request_disconnect_p = 0.08;
  o.proxy.reply_disconnect_p = 0.08;
  chaos::ChaosFleet fleet(o);
  const auto report = run_storm(fleet, small_storm(1004, true));
  EXPECT_TRUE(report.passed()) << report.describe();
}

// --------------------------------------------------- byte-level fault classes

TEST(Chaos, ShortWritesAreInvisible) {
  // Every request-leg send capped at 2 bytes: pure reassembly stress,
  // zero errors allowed.
  auto o = proxied_fleet(105);
  o.proxy.short_write_cap = 2;
  chaos::ChaosFleet fleet(o);
  const auto report = run_storm(fleet, small_storm(1005, false));
  EXPECT_TRUE(report.passed()) << report.describe();
  EXPECT_EQ(report.errors, 0u) << report.describe();
}

TEST(Chaos, SlowLorisRepliesAreInvisible) {
  // Every reply dribbled byte-at-a-time through the proxy.
  auto o = proxied_fleet(106);
  o.proxy.slowloris_p = 1.0;
  o.proxy.slowloris_delay_us = 20;
  chaos::ChaosFleet fleet(o);
  auto so = small_storm(1006, false);
  so.requests_per_client = 12;  // dribbled replies are slow by design
  const auto report = run_storm(fleet, so);
  EXPECT_TRUE(report.passed()) << report.describe();
  EXPECT_EQ(report.errors, 0u) << report.describe();
}

// ------------------------------------------------- reply-corruption classes

TEST(Chaos, CorruptedRepliesNeverReachClients) {
  auto o = proxied_fleet(107);
  o.proxy.corrupt_p = 0.3;
  chaos::ChaosFleet fleet(o);
  const auto report = run_storm(fleet, small_storm(1007, true));
  EXPECT_TRUE(report.passed()) << report.describe();
  EXPECT_EQ(report.malformed, 0u) << report.describe();
  // Corruption abandons the pipe and fails the FIFO over.
  EXPECT_GE(fleet.router().stats().failovers, 1u);
}

TEST(Chaos, TruncatedRepliesNeverReachClients) {
  auto o = proxied_fleet(108);
  o.proxy.truncate_p = 0.2;
  chaos::ChaosFleet fleet(o);
  const auto report = run_storm(fleet, small_storm(1008, true));
  EXPECT_TRUE(report.passed()) << report.describe();
  EXPECT_EQ(report.malformed, 0u) << report.describe();
}

TEST(Chaos, UnsolicitedGarbageLinesNeverReachClients) {
  auto o = proxied_fleet(109);
  o.proxy.unsolicited_p = 0.3;
  chaos::ChaosFleet fleet(o);
  const auto report = run_storm(fleet, small_storm(1009, true));
  EXPECT_TRUE(report.passed()) << report.describe();
  EXPECT_EQ(report.malformed, 0u) << report.describe();
  EXPECT_EQ(report.mismatched, 0u) << report.describe();
}

// ------------------------------------------------------- latency + hedging

TEST(Chaos, LatencySpikesWithHedgingStayCorrect) {
  auto o = proxied_fleet(110);
  o.proxy.reply_delay_p = 0.5;
  o.proxy.reply_delay_us = 5000;
  o.router.hedge_ms = 2.0;  // fixed hedge well under the spike
  chaos::ChaosFleet fleet(o);
  const auto report = run_storm(fleet, small_storm(1010, false));
  EXPECT_TRUE(report.passed()) << report.describe();
  EXPECT_EQ(report.errors, 0u) << report.describe();
  // With half the replies delayed 5 ms and a 2 ms hedge, hedges fire.
  EXPECT_GE(fleet.router().stats().hedges, 1u);
}

// ------------------------------------------------------------ traced storms

TEST(Chaos, TracedStormSurvivesFailoverWithWinnerOnlySpans) {
  // Every request sampled while disconnects force failovers: the retried
  // wire line carries the same trace context to the replica, so invariant
  // 6 proves the reassembled traces hold exactly one backend span set
  // (the attempt that actually answered) and the rings leak nothing.
  auto o = proxied_fleet(112);
  o.proxy.request_disconnect_p = 0.08;
  o.proxy.reply_disconnect_p = 0.08;
  o.router.trace_every = 1;
  chaos::ChaosFleet fleet(o);
  const auto report = run_storm(fleet, small_storm(1014, true));
  EXPECT_TRUE(report.passed()) << report.describe();
  EXPECT_GT(fleet.router().tracer().sampled_traces(), 0u);
  EXPECT_GT(report.traces_completed, 0u) << report.describe();
  EXPECT_EQ(report.open_spans_after, 0) << report.describe();
}

TEST(Chaos, TracedStormSurvivesHedgingWithWinnerOnlySpans) {
  // Latency spikes plus an aggressive hedge: both attempts of a hedged
  // request share one trace id, and only the winner's reply may fold its
  // spans into the router's rings (the loser is abandoned/discarded).
  auto o = proxied_fleet(113);
  o.proxy.reply_delay_p = 0.5;
  o.proxy.reply_delay_us = 5000;
  o.router.hedge_ms = 2.0;
  o.router.trace_every = 1;
  chaos::ChaosFleet fleet(o);
  const auto report = run_storm(fleet, small_storm(1015, false));
  EXPECT_TRUE(report.passed()) << report.describe();
  EXPECT_EQ(report.errors, 0u) << report.describe();
  EXPECT_GE(fleet.router().stats().hedges, 1u);
  EXPECT_GT(report.traces_completed, 0u) << report.describe();
  EXPECT_EQ(report.open_spans_after, 0) << report.describe();
}

// --------------------------------------------------------------- mixed storm

TEST(Chaos, MixedStormHoldsEveryInvariant) {
  auto o = proxied_fleet(111);
  o.proxy.refuse_p = 0.05;
  o.proxy.blackhole_p = 0.05;
  o.proxy.request_disconnect_p = 0.02;
  o.proxy.reply_disconnect_p = 0.02;
  o.proxy.short_write_cap = 7;
  o.proxy.corrupt_p = 0.03;
  o.proxy.truncate_p = 0.02;
  o.proxy.unsolicited_p = 0.03;
  o.proxy.reply_delay_p = 0.1;
  o.proxy.reply_delay_us = 1000;
  o.router.hedge_ms = 5.0;
  chaos::ChaosFleet fleet(o);
  // Two storms over the same fleet: the second runs on whatever pipes,
  // health state, and caches the first left behind.
  const auto first = run_storm(fleet, small_storm(1011, true));
  EXPECT_TRUE(first.passed()) << first.describe();
  const auto second = run_storm(fleet, small_storm(1012, true));
  EXPECT_TRUE(second.passed()) << second.describe();
}

// ------------------------------------------------------ in-process injector

TEST(Chaos, InProcessShortIoStormIsInvisible) {
  // The compiled-in hook, armed with nondestructive classes only: every
  // send may be capped, every recv may be dribbled or delayed. This
  // covers the router's nonblocking WriteQueue/LineReader paths AND the
  // storm's own blocking clients, since the injector is process-global.
  chaos::ChaosFleetOptions fo;
  fo.backends = 2;
  ScheduledFaultInjector::Options io;
  io.seed = 777;
  io.send_short_p = 0.3;
  io.send_short_cap = 9;
  io.recv_short_p = 0.3;
  io.recv_short_cap = 5;
  io.send_delay_p = 0.05;
  io.send_delay_us = 100;
  io.recv_delay_p = 0.05;
  io.recv_delay_us = 100;
  ScheduledFaultInjector injector(io);
  chaos::ChaosFleet fleet(fo);  // fleet dials before arming: clean start
  {
    ScopedFaultInjector armed(&injector);
    const auto report = run_storm(fleet, small_storm(1013, false));
    EXPECT_TRUE(report.passed()) << report.describe();
    EXPECT_EQ(report.errors, 0u) << report.describe();
  }
  const auto counts = injector.counts();
  EXPECT_GT(counts.total_injected(), 0u);
  EXPECT_GT(counts.sends_shortened + counts.recvs_shortened, 0u);
}

}  // namespace
