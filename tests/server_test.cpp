#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/exhaustive_policies.h"
#include "core/reactive_policies.h"
#include "core/tecfan_policy.h"
#include "perf/wikipedia_trace.h"
#include "sim/server_system.h"
#include "util/error.h"
#include "util/stats.h"

namespace tecfan::sim {
namespace {

std::shared_ptr<const ServerThermalModel> model() {
  static auto m = std::make_shared<const ServerThermalModel>();
  return m;
}

ServerConfig short_config(double seconds = 40.0) {
  ServerConfig cfg;
  cfg.duration_s = seconds;
  cfg.max_extra_s = 30.0;
  return cfg;
}

// ------------------------------------------------------------- thermal
TEST(ServerThermal, ZeroPowerIsAmbient) {
  const std::vector<double> p(4, 0.0);
  const std::vector<std::uint8_t> off(4, 0);
  const auto t = model()->steady(p, off, 30.0);
  for (double v : t) EXPECT_NEAR(v, model()->params().ambient_k, 1e-9);
}

TEST(ServerThermal, PowerRaisesCoreAboveSpreaderAboveSink) {
  const std::vector<double> p(4, 12.0);
  const std::vector<std::uint8_t> off(4, 0);
  const auto t = model()->steady(p, off, 40.0);
  EXPECT_GT(t[model()->core_node(0)], t[model()->spreader_node()]);
  EXPECT_GT(t[model()->spreader_node()], t[model()->sink_node()]);
  EXPECT_GT(t[model()->sink_node()], model()->params().ambient_k);
}

TEST(ServerThermal, TecCoolsItsCore) {
  const std::vector<double> p(4, 12.0);
  std::vector<std::uint8_t> tec(4, 0);
  const auto t_off = model()->steady(p, tec, 40.0);
  tec[2] = 1;
  const auto t_on = model()->steady(p, tec, 40.0);
  EXPECT_LT(t_on[model()->core_node(2)], t_off[model()->core_node(2)] - 1.0);
  // Other cores barely move (slightly warmer from rejected heat).
  EXPECT_NEAR(t_on[model()->core_node(0)], t_off[model()->core_node(0)],
              1.0);
}

TEST(ServerThermal, FasterAirflowCools) {
  const std::vector<double> p(4, 12.0);
  const std::vector<std::uint8_t> off(4, 0);
  const auto slow = model()->steady(p, off, 9.6);
  const auto fast = model()->steady(p, off, 60.0);
  EXPECT_LT(fast[model()->core_node(0)], slow[model()->core_node(0)] - 2.0);
}

TEST(ServerThermal, TransientConvergesToSteady) {
  const std::vector<double> p(4, 10.0);
  const std::vector<std::uint8_t> off(4, 0);
  const auto ts = model()->steady(p, off, 30.0);
  linalg::Vector t(ServerThermalModel::kNodes, model()->params().ambient_k);
  for (int i = 0; i < 600; ++i) t = model()->step(t, p, off, 30.0, 1.0);
  EXPECT_LT(max_abs_diff(t, ts), 0.05);
}

TEST(ServerThermal, TecPowerFollowsEq9) {
  const auto& prm = model()->params();
  linalg::Vector t(ServerThermalModel::kNodes, 330.0);
  t[model()->hot_node(1)] = 345.0;
  t[model()->cold_node(1)] = 325.0;
  const double expected =
      prm.tec_r_ohm * prm.tec_current_a * prm.tec_current_a +
      prm.tec_alpha_v_per_k * prm.tec_current_a * 20.0;
  EXPECT_NEAR(model()->tec_power_w(t, 1, true), expected, 1e-12);
  EXPECT_DOUBLE_EQ(model()->tec_power_w(t, 1, false), 0.0);
}

TEST(ServerThermal, LeakageLinearInTemperature) {
  const auto& prm = model()->params();
  EXPECT_NEAR(model()->leakage_w(prm.leak_ref_k), prm.leak_base_w, 1e-12);
  EXPECT_NEAR(model()->leakage_w(prm.leak_ref_k + 10.0),
              prm.leak_base_w + 10.0 * prm.leak_alpha_w_per_k, 1e-12);
  EXPECT_DOUBLE_EQ(model()->leakage_w(0.0), 0.0);  // clamped
}

TEST(ServerThermal, TausSeparateCoreAndSinkScales) {
  const auto& taus = model()->taus();
  EXPECT_LT(taus[model()->core_node(0)], 5.0);
  EXPECT_GT(taus[model()->sink_node()], 20.0);
}

// ------------------------------------------------------------- planning
TEST(ServerPlanning, PredictionRespondsToAllKnobs) {
  ServerPlanningModel planner(model(), ServerConfig{});
  ServerPlanningModel::Observation obs;
  obs.core_temps_k.assign(4, 338.0);
  obs.demand.assign(4, 0.55);
  obs.applied = core::KnobState::initial(4, 4, 2);
  planner.observe(obs);

  const core::Prediction base = planner.predict_steady(obs.applied);
  core::KnobState faster_fan = obs.applied;
  faster_fan.fan_level = 0;
  EXPECT_LT(planner.predict_steady(faster_fan).max_temp_k(),
            base.max_temp_k());
  core::KnobState throttled = obs.applied;
  throttled.dvfs = {2, 2, 2, 2};
  const core::Prediction pt = planner.predict_steady(throttled);
  EXPECT_LT(pt.max_temp_k(), base.max_temp_k());
  EXPECT_LT(pt.power.dynamic_w, base.power.dynamic_w);
  core::KnobState cooled = obs.applied;
  cooled.tec_on = {1, 1, 1, 1};
  EXPECT_LT(planner.predict_steady(cooled).max_temp_k(), base.max_temp_k());
}

TEST(ServerPlanning, ServedIpsSaturatesWithDemand) {
  ServerConfig cfg;
  ServerPlanningModel planner(model(), cfg);
  ServerPlanningModel::Observation obs;
  obs.core_temps_k.assign(4, 330.0);
  obs.demand.assign(4, 0.3);  // light load
  obs.applied = core::KnobState::initial(4, 4, 0);
  planner.observe(obs);
  core::KnobState top = obs.applied;
  core::KnobState mid = obs.applied;
  mid.dvfs = {1, 1, 1, 1};
  // At light load both serve everything: same served IPS, less capacity.
  const auto p_top = planner.predict(top);
  const auto p_mid = planner.predict(mid);
  EXPECT_NEAR(p_top.ips, p_mid.ips, 1);
  EXPECT_GT(p_top.capacity_ips, p_mid.capacity_ips);
}

TEST(ServerPlanning, SpotMappingIsPerCore) {
  ServerPlanningModel planner(model(), ServerConfig{});
  EXPECT_EQ(planner.spot_count(), 4u);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(planner.core_of_spot(s), static_cast<int>(s));
    ASSERT_EQ(planner.tecs_over(s).size(), 1u);
    EXPECT_EQ(planner.tecs_over(s)[0], s);
  }
}

// ------------------------------------------------------------ simulator
TEST(ServerSimulator, ShortRunProducesSaneMetrics) {
  perf::WikipediaTrace trace;
  ServerSimulator sim(short_config());
  core::FanOnlyPolicy policy;  // static knobs
  const RunResult r = sim.run(policy, trace);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.avg_power.dynamic_w, 10.0);
  EXPECT_LT(r.avg_power.dynamic_w, 80.0);
  EXPECT_GT(r.avg_ips, 0.0);
  EXPECT_EQ(r.workload, "wikipedia");
  EXPECT_NEAR(r.energy_j, r.avg_total_power_w() * r.exec_time_s,
              0.05 * r.energy_j);
}

TEST(ServerSimulator, DeterministicRuns) {
  perf::WikipediaTrace trace;
  ServerSimulator sim(short_config());
  core::TecFanPolicy p1, p2;
  const RunResult a = sim.run(p1, trace);
  const RunResult b = sim.run(p2, trace);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_DOUBLE_EQ(a.peak_temp_k, b.peak_temp_k);
}

TEST(ServerSimulator, RecordsIpsAndCapacityTraces) {
  perf::WikipediaTrace trace;
  ServerSimulator sim(short_config());
  core::FanOnlyPolicy policy;
  const RunResult r = sim.run(policy, trace);
  (void)r;
  ASSERT_FALSE(sim.last_ips_trace().empty());
  ASSERT_FALSE(sim.last_capacity_trace().empty());
  EXPECT_EQ(sim.last_ips_trace().size(), sim.last_capacity_trace().size());
  // At top DVFS the capacity is 4 cores x peak ips.
  EXPECT_NEAR(sim.last_capacity_trace()[0],
              4.0 * sim.config().core_model.peak_ips, 1);
  // Served never exceeds capacity.
  for (std::size_t i = 0; i < sim.last_ips_trace().size(); ++i)
    EXPECT_LE(sim.last_ips_trace()[i], sim.last_capacity_trace()[i] + 1e-6);
}

TEST(ServerSimulator, BacklogExtendsExecutionWhenSaturated) {
  perf::WikipediaTrace trace;
  ServerConfig cfg = short_config(60.0);
  ServerSimulator sim(cfg);
  // Pin everything at the slowest DVFS level: capacity < peak demand, so
  // backlog forms and drains after the trace window.
  class SlowestPolicy final : public core::Policy {
   public:
    std::string_view name() const override { return "slowest"; }
    core::KnobState decide(core::PlanningModel& m,
                           const core::KnobState& cur) override {
      core::KnobState k = cur;
      for (auto& d : k.dvfs) d = m.dvfs_level_count() - 1;
      return k;
    }
  } slow;
  const RunResult r = sim.run(slow, trace);
  core::FanOnlyPolicy fast;
  const RunResult rf = sim.run(fast, trace);
  EXPECT_GE(r.exec_time_s, rf.exec_time_s);
  EXPECT_LT(r.avg_power.dynamic_w, rf.avg_power.dynamic_w);
}

TEST(ServerSimulator, OraclePolicySavesEnergyOverOftec) {
  // The Fig. 7 headline, on a short window for test runtime.
  perf::WikipediaTrace trace;
  ServerConfig cfg = short_config(30.0);
  ServerSimulator sim(cfg);
  core::PolicyOptions popt;
  popt.manage_fan = true;
  popt.fan_period_intervals = cfg.fan_period_intervals;
  core::ExhaustiveOptions xopt;
  xopt.base = popt;
  core::OftecPolicy oftec(xopt);
  const RunResult r_oftec = sim.run(oftec, trace);
  core::OraclePolicy oracle(xopt);
  const RunResult r_oracle = sim.run(oracle, trace);
  core::TecFanPolicy tecfan(popt);
  const RunResult r_tecfan = sim.run(tecfan, trace);
  EXPECT_LT(r_oracle.energy_j, r_oftec.energy_j);
  EXPECT_LT(r_tecfan.energy_j, r_oftec.energy_j);
  EXPECT_LE(r_oracle.energy_j, r_tecfan.energy_j * 1.02);
}

}  // namespace
}  // namespace tecfan::sim
