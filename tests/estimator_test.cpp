#include <gtest/gtest.h>

#include <cmath>

#include <memory>

#include "linalg/lu.h"
#include "linalg/ordering.h"
#include "thermal/core_estimator.h"
#include "thermal/solvers.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace tecfan {
namespace {

using thermal::ChipThermalModel;
using thermal::CoreEstimator;
using thermal::Floorplan;
using thermal::kComponentsPerTile;

std::shared_ptr<const ChipThermalModel> model22() {
  static auto m = std::make_shared<const ChipThermalModel>(
      Floorplan::scc(2, 2), thermal::PackageParameters{},
      thermal::TecParameters{});
  return m;
}

// ---------------------------------------------------------------- ordering
TEST(Rcm, PathGraphGetsBandwidthOne) {
  // A path graph numbered randomly must come back with bandwidth 1.
  const std::size_t n = 12;
  std::vector<std::size_t> shuffle(n);
  for (std::size_t i = 0; i < n; ++i) shuffle[i] = i;
  Rng rng(5);
  for (std::size_t i = n; i > 1; --i)
    std::swap(shuffle[i - 1], shuffle[rng.below(i)]);
  std::vector<std::vector<std::size_t>> graph(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    graph[shuffle[i]].push_back(shuffle[i + 1]);
    graph[shuffle[i + 1]].push_back(shuffle[i]);
  }
  const auto perm = linalg::reverse_cuthill_mckee(graph);
  EXPECT_EQ(linalg::bandwidth_under(graph, perm), 1u);
}

TEST(Rcm, PermutationIsValid) {
  linalg::SparseBuilder b(10, 10);
  Rng rng(9);
  for (int e = 0; e < 15; ++e) {
    const std::size_t i = rng.below(10), j = rng.below(10);
    if (i != j) b.add_conductance(i, j, 1.0);
  }
  for (std::size_t i = 0; i < 10; ++i) b.add_to_diagonal(i, 1.0);
  const auto m = b.build();
  const auto perm = linalg::reverse_cuthill_mckee(m);
  ASSERT_EQ(perm.size(), 10u);
  std::vector<bool> seen(10, false);
  for (std::size_t p : perm) {
    ASSERT_LT(p, 10u);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(Rcm, NeverWorseThanIdentityOnChainPlusNoise) {
  // RCM should (weakly) beat the identity ordering on a banded-ish graph
  // with a few long-range edges.
  const std::size_t n = 40;
  std::vector<std::vector<std::size_t>> graph(n);
  auto link = [&](std::size_t a, std::size_t b) {
    graph[a].push_back(b);
    graph[b].push_back(a);
  };
  for (std::size_t i = 0; i + 1 < n; ++i) link(i, i + 1);
  link(0, n - 1);
  link(3, 30);
  std::vector<std::size_t> identity(n);
  for (std::size_t i = 0; i < n; ++i) identity[i] = i;
  const auto perm = linalg::reverse_cuthill_mckee(graph);
  EXPECT_LE(linalg::bandwidth_under(graph, perm),
            linalg::bandwidth_under(graph, identity));
}

TEST(Rcm, HandlesDisconnectedComponents) {
  std::vector<std::vector<std::size_t>> graph(6);
  graph[0] = {1};
  graph[1] = {0};
  graph[4] = {5};
  graph[5] = {4};
  const auto perm = linalg::reverse_cuthill_mckee(graph);
  EXPECT_EQ(perm.size(), 6u);
}

TEST(Rcm, SingleNodeAndEmptyGraphs) {
  EXPECT_TRUE(linalg::reverse_cuthill_mckee(
                  std::vector<std::vector<std::size_t>>{})
                  .empty());
  const auto one = linalg::reverse_cuthill_mckee(
      std::vector<std::vector<std::size_t>>(1));
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(Rcm, IsolatedNodesAmongComponentsAreAllOrdered) {
  // Two path components plus two isolated nodes: every node must appear
  // exactly once, and each path must still get bandwidth 1.
  std::vector<std::vector<std::size_t>> graph(8);
  graph[1] = {3};
  graph[3] = {1, 6};
  graph[6] = {3};
  graph[2] = {7};
  graph[7] = {2};
  const auto perm = linalg::reverse_cuthill_mckee(graph);
  ASSERT_EQ(perm.size(), 8u);
  std::vector<bool> seen(8, false);
  for (const std::size_t p : perm) {
    ASSERT_LT(p, 8u);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
  EXPECT_LE(linalg::bandwidth_under(graph, perm), 2u);
}

// Regression pin for the serving-path banded backend: if a floorplan or
// network-builder change (or an RCM regression) pushes the default
// 16-core chip's reordered half-bandwidth past the FactoredOperator
// viability cutoff (3b < n), engines silently fall back to dense and the
// BENCH_solver numbers no longer describe the shipped configuration.
// Measured today: b = 173 of n = 608 (the 16 spreader hub nodes, degree
// ~30, put a structural floor under the bandwidth).
TEST(Rcm, DefaultChipNetworkBandwidthStaysBandable) {
  const ChipThermalModel model(Floorplan::scc(4, 4),
                               thermal::PackageParameters{},
                               thermal::TecParameters{});
  const auto graph = linalg::sparsity_graph(model.base_conductance());
  const auto perm = linalg::reverse_cuthill_mckee(graph);
  const std::size_t bw = linalg::bandwidth_under(graph, perm);
  EXPECT_LE(bw, 200u);
  EXPECT_LT(3 * bw, model.node_count());
}

TEST(Rcm, PermuteSymmetricRoundTrip) {
  Rng rng(3);
  linalg::DenseMatrix a(5, 5);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c <= r; ++c) a(r, c) = a(c, r) = rng.uniform();
  const std::vector<std::size_t> perm = {4, 2, 0, 1, 3};
  const auto p = linalg::permute_symmetric(a, perm);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 5; ++c)
      EXPECT_DOUBLE_EQ(p(r, c), a(perm[r], perm[c]));
}

// ----------------------------------------------------------- core estimator
TEST(CoreEstimatorTest, LocalNodeCountAndBandwidth) {
  for (int core = 0; core < 4; ++core) {
    const CoreEstimator est(model22(), core);
    EXPECT_EQ(est.local_node_count(),
              static_cast<std::size_t>(kComponentsPerTile) + 2 * 9);
    // The Sec. III-E band-matrix claim: a genuine band far narrower than
    // the dense size.
    EXPECT_LT(est.bandwidth(), est.local_node_count() / 2);
    EXPECT_GT(est.bandwidth(), 0u);
  }
}

TEST(CoreEstimatorTest, ExactWhenBoundaryIsTruth) {
  // With boundary temperatures taken from the true global solution, the
  // conditioned solve must reproduce the global solution on local nodes.
  auto model = model22();
  thermal::SteadyStateSolver global(thermal::make_thermal_engine(model));
  linalg::Vector power(model->component_count(), 0.3);
  power[model->floorplan().index_of(1, thermal::ComponentKind::kFpMul)] =
      1.2;
  thermal::CoolingState cooling = model->make_cooling_state(35.0);
  cooling.tec_on[model->tec_base_of_tile(1) + 4] = 1;
  const linalg::Vector truth = global.solve(power, cooling);

  const CoreEstimator est(model, /*core=*/1);
  std::vector<double> comp_power(kComponentsPerTile);
  const auto comps = model->floorplan().components_of_core(1);
  for (int k = 0; k < kComponentsPerTile; ++k)
    comp_power[static_cast<std::size_t>(k)] =
        power[comps[static_cast<std::size_t>(k)]];
  std::vector<std::uint8_t> tec_on(9, 0);
  tec_on[4] = 1;

  const linalg::Vector local = est.steady(comp_power, tec_on, truth);
  for (std::size_t i = 0; i < est.local_node_count(); ++i)
    EXPECT_NEAR(local[i], truth[est.local_to_global()[i]], 1e-7)
        << "local node " << i;
}

TEST(CoreEstimatorTest, ComponentMappingConsistent) {
  auto model = model22();
  const CoreEstimator est(model, 2);
  const auto comps = model->floorplan().components_of_core(2);
  for (int k = 0; k < kComponentsPerTile; ++k) {
    const std::size_t local = est.local_of_component(k);
    EXPECT_EQ(est.local_to_global()[local],
              model->die_node(comps[static_cast<std::size_t>(k)]));
  }
  EXPECT_THROW(est.local_of_component(18), precondition_error);
}

TEST(CoreEstimatorTest, StaleBoundaryGivesSmallBiasOnly) {
  // With slightly stale boundary temperatures (0.5 K off), the local
  // estimate moves by the same order — no amplification.
  auto model = model22();
  thermal::SteadyStateSolver global(thermal::make_thermal_engine(model));
  const linalg::Vector power(model->component_count(), 0.35);
  const thermal::CoolingState cooling = model->make_cooling_state(40.0);
  const linalg::Vector truth = global.solve(power, cooling);

  const CoreEstimator est(model, 0);
  std::vector<double> comp_power(kComponentsPerTile, 0.35);
  const std::vector<std::uint8_t> tec_off(9, 0);
  linalg::Vector stale = truth;
  for (auto& v : stale) v += 0.5;
  const linalg::Vector exact = est.steady(comp_power, tec_off, truth);
  const linalg::Vector biased = est.steady(comp_power, tec_off, stale);
  for (std::size_t i = 0; i < est.local_node_count(); ++i) {
    EXPECT_GE(biased[i], exact[i]);
    EXPECT_LE(biased[i] - exact[i], 0.5 + 1e-9);
  }
}

TEST(CoreEstimatorTest, TecActivationCoolsLocally) {
  auto model = model22();
  thermal::SteadyStateSolver global(thermal::make_thermal_engine(model));
  const linalg::Vector power(model->component_count(), 0.4);
  const thermal::CoolingState cooling = model->make_cooling_state(40.0);
  const linalg::Vector truth = global.solve(power, cooling);

  const CoreEstimator est(model, 0);
  std::vector<double> comp_power(kComponentsPerTile, 0.4);
  std::vector<std::uint8_t> tec(9, 0);
  const linalg::Vector before = est.steady(comp_power, tec, truth);
  tec[0] = 1;
  const linalg::Vector after = est.steady(comp_power, tec, truth);
  // The device's cold face (and some die node) must get cooler.
  bool some_cooler = false;
  for (std::size_t i = 0; i < est.local_node_count(); ++i)
    if (after[i] < before[i] - 0.5) some_cooler = true;
  EXPECT_TRUE(some_cooler);
}

TEST(CoreEstimatorTest, ExponentialBlendUsesLocalTaus) {
  auto model = model22();
  const CoreEstimator est(model, 3);
  const linalg::Vector steady(est.local_node_count(), 350.0);
  const linalg::Vector prev(est.local_node_count(), 330.0);
  const auto now = est.exponential(steady, prev, 2e-3);
  for (std::size_t i = 0; i < now.size(); ++i) {
    EXPECT_GE(now[i], 330.0 - 1e-12);
    EXPECT_LE(now[i], 350.0 + 1e-12);
  }
  const auto frozen = est.exponential(steady, prev, 0.0);
  EXPECT_LT(max_abs_diff(frozen, prev), 1e-12);
}

TEST(CoreEstimatorTest, MuchCheaperThanGlobalSystem) {
  // On the full 16-core chip, the per-core banded factorization cost
  // (n * bw^2) is orders of magnitude below a dense solve of the full
  // network — the Sec. III-E viability argument.
  auto model = std::make_shared<const ChipThermalModel>(
      Floorplan::scc(4, 4), thermal::PackageParameters{},
      thermal::TecParameters{});
  const CoreEstimator est(model, 5);
  const double local_cost = static_cast<double>(est.local_node_count()) *
                            est.bandwidth() * est.bandwidth();
  const double global_cost =
      std::pow(static_cast<double>(model->node_count()), 3) / 3.0;
  EXPECT_LT(local_cost * 1000, global_cost);
}

TEST(CoreEstimatorTest, RejectsBadInputs) {
  auto model = model22();
  EXPECT_THROW(CoreEstimator(model, 4), precondition_error);
  EXPECT_THROW(CoreEstimator(nullptr, 0), precondition_error);
  const CoreEstimator est(model, 0);
  const std::vector<double> short_power(5, 0.1);
  const std::vector<std::uint8_t> tec(9, 0);
  const linalg::Vector temps(model->node_count(), 330.0);
  EXPECT_THROW(est.steady(short_power, tec, temps), precondition_error);
}

}  // namespace
}  // namespace tecfan
