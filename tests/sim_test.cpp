#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/reactive_policies.h"
#include "core/tecfan_policy.h"
#include "perf/splash2.h"
#include "sim/chip_engine.h"
#include "sim/chip_simulator.h"
#include "sim/defaults.h"
#include "sim/experiment.h"
#include "sim/trace_io.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/stats.h"
#include "util/units.h"

namespace tecfan::sim {
namespace {

// All mechanics tests run on a 2x2 chip for speed; the full 4x4 calibration
// lives in integration_test.cpp. One shared engine serves every simulator
// the tests construct — that sharing is itself under test.
const ChipEnginePtr& small_engine() {
  static const ChipEnginePtr e = make_chip_engine(2, 2);
  return e;
}

ChipModels& small_models() {
  static ChipModels m = small_engine()->models();
  return m;
}

ChipSimulator& small_simulator() {
  static ChipSimulator sim(small_engine());
  return sim;
}

perf::WorkloadPtr small_workload(const std::string& bench = "cholesky") {
  static std::map<std::string, perf::WorkloadPtr> cache;
  auto it = cache.find(bench);
  if (it != cache.end()) return it->second;
  auto wl = perf::make_splash_workload(bench, 4,
                                       small_models().thermal->floorplan(),
                                       small_models().dynamic,
                                       small_models().leak_quad);
  cache[bench] = wl;
  return wl;
}

// ---------------------------------------------------------------- defaults
TEST(Defaults, FullEngineUsesBandedBackend) {
  // kAuto resolves to the RCM-permuted band factorization for the 16-core
  // chip (the 2x2 test model correctly stays dense — its bandwidth is too
  // wide relative to its size); the dense path remains an explicit
  // override.
  const ChipEnginePtr full = make_chip_engine(4, 4);
  EXPECT_TRUE(full->thermal()->banded());
  const ChipEnginePtr dense =
      make_chip_engine(4, 4, 2e-3, 4, linalg::SolveBackend::kDense);
  EXPECT_FALSE(dense->thermal()->banded());
  EXPECT_FALSE(small_engine()->thermal()->banded());
}

TEST(Defaults, ModelBundleIsConsistent) {
  const ChipModels& m = small_models();
  ASSERT_NE(m.thermal, nullptr);
  EXPECT_EQ(m.thermal->floorplan().core_count(), 4);
  // The quadratic plant model is matched to the linear controller model.
  EXPECT_NEAR(m.leak_quad.chip_leakage_w(m.leak_linear.t_tdp_k),
              m.leak_linear.p_tdp_leak_w, 1e-9);
}

// -------------------------------------------------------------- simulator
TEST(ChipSimulator, EquilibriumIsSelfConsistent) {
  auto wl = small_workload();
  const auto knobs = core::KnobState::initial(
      4, small_models().thermal->tec_count(), 0);
  const linalg::Vector t = small_simulator().equilibrium(*wl, knobs);
  EXPECT_EQ(t.size(), small_models().thermal->node_count());
  for (double v : t) {
    EXPECT_GT(v, small_models().thermal->ambient_k() - 1e-6);
    EXPECT_LT(v, celsius_to_kelvin(150.0));
  }
}

TEST(ChipSimulator, BaseRunCompletesOnSchedule) {
  auto wl = small_workload();
  core::FanOnlyPolicy policy;
  RunConfig cfg;
  cfg.threshold_k = 1e6;
  cfg.fan_level = 0;
  const RunResult r = small_simulator().run(policy, *wl, cfg);
  EXPECT_TRUE(r.completed);
  // Completion within a few control intervals of the Table I time
  // (interval quantization + phase noise): cholesky/4t is 57.2 ms.
  EXPECT_NEAR(r.exec_time_s * 1e3, 57.2, 6.0);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_GT(r.avg_ips, 0.0);
  EXPECT_EQ(r.policy, "Fan-only");
}

TEST(ChipSimulator, RunsAreDeterministic) {
  auto wl = small_workload();
  core::FanTecPolicy p1, p2;
  RunConfig cfg;
  cfg.threshold_k = celsius_to_kelvin(70.0);
  cfg.fan_level = 1;
  const RunResult a = small_simulator().run(p1, *wl, cfg);
  const RunResult b = small_simulator().run(p2, *wl, cfg);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_DOUBLE_EQ(a.peak_temp_k, b.peak_temp_k);
  EXPECT_DOUBLE_EQ(a.exec_time_s, b.exec_time_s);
  EXPECT_DOUBLE_EQ(a.violation_frac, b.violation_frac);
}

TEST(ChipSimulator, EnergyEqualsAvgPowerTimesTime) {
  auto wl = small_workload();
  core::FanOnlyPolicy policy;
  RunConfig cfg;
  cfg.threshold_k = 1e6;
  cfg.fan_level = 2;
  const RunResult r = small_simulator().run(policy, *wl, cfg);
  // Completion can land mid-interval; energy integrates full intervals, so
  // compare using the trace length.
  const double sim_time =
      static_cast<double>(r.trace.size()) *
      small_simulator().control_period_s();
  EXPECT_NEAR(r.energy_j, r.avg_total_power_w() * sim_time,
              0.01 * r.energy_j);
}

TEST(ChipSimulator, SlowerFanRaisesTemperature) {
  auto wl = small_workload();
  RunConfig cfg;
  cfg.threshold_k = 1e6;
  double prev_peak = 0.0;
  for (int level : {0, 3, 6}) {
    core::FanOnlyPolicy policy;
    cfg.fan_level = level;
    const RunResult r = small_simulator().run(policy, *wl, cfg);
    EXPECT_GT(r.peak_temp_k, prev_peak);
    prev_peak = r.peak_temp_k;
  }
}

TEST(ChipSimulator, ThrottlingExtendsExecution) {
  auto wl = small_workload();
  RunConfig cfg;
  // Threshold low enough that Fan+DVFS must throttle hard.
  core::FanOnlyPolicy base_policy;
  cfg.threshold_k = 1e6;
  cfg.fan_level = 0;
  const RunResult base = small_simulator().run(base_policy, *wl, cfg);

  core::FanDvfsPolicy dvfs_policy;
  cfg.threshold_k = base.peak_temp_k - 6.0;
  cfg.fan_level = 4;
  cfg.max_sim_time_s = 2.0;
  const RunResult throttled = small_simulator().run(dvfs_policy, *wl, cfg);
  EXPECT_TRUE(throttled.completed);
  EXPECT_GT(throttled.exec_time_s, base.exec_time_s * 1.05);
  EXPECT_LT(throttled.avg_power.dynamic_w, base.avg_power.dynamic_w);
}

TEST(ChipSimulator, ViolationFractionIsPerComponentSample) {
  auto wl = small_workload();
  core::FanOnlyPolicy policy;
  RunConfig cfg;
  cfg.fan_level = 0;
  // Threshold below every die temperature: every sample violates.
  cfg.threshold_k = small_models().thermal->ambient_k();
  const RunResult all = small_simulator().run(policy, *wl, cfg);
  EXPECT_NEAR(all.violation_frac, 1.0, 1e-9);
  // Threshold above everything: none do.
  core::FanOnlyPolicy policy2;
  cfg.threshold_k = 1e6;
  const RunResult none = small_simulator().run(policy2, *wl, cfg);
  EXPECT_DOUBLE_EQ(none.violation_frac, 0.0);
}

TEST(ChipSimulator, TraceRecordsEveryInterval) {
  auto wl = small_workload();
  core::FanOnlyPolicy policy;
  RunConfig cfg;
  cfg.threshold_k = 1e6;
  cfg.fan_level = 0;
  cfg.record_trace = true;
  const RunResult r = small_simulator().run(policy, *wl, cfg);
  ASSERT_FALSE(r.trace.empty());
  EXPECT_NEAR(static_cast<double>(r.trace.size()) *
                  small_simulator().control_period_s(),
              r.exec_time_s, small_simulator().control_period_s() + 1e-9);
  for (std::size_t i = 1; i < r.trace.size(); ++i)
    EXPECT_GT(r.trace[i].time_s, r.trace[i - 1].time_s);

  core::FanOnlyPolicy policy2;
  cfg.record_trace = false;
  EXPECT_TRUE(small_simulator().run(policy2, *wl, cfg).trace.empty());
}

TEST(ChipSimulator, FanFixedUnlessPolicyManagesIt) {
  auto wl = small_workload();
  // TECfan with fan management enabled would move the fan; the harness
  // pins it when policy_manages_fan is false.
  core::PolicyOptions opt;
  opt.manage_fan = true;
  opt.fan_period_intervals = 1;
  core::TecFanPolicy policy(opt);
  RunConfig cfg;
  cfg.threshold_k = 1e6;  // cool: fan loop would slow the fan to minimum
  cfg.fan_level = 0;
  cfg.policy_manages_fan = false;
  cfg.record_trace = true;
  const RunResult r = small_simulator().run(policy, *wl, cfg);
  for (const auto& rec : r.trace) EXPECT_EQ(rec.fan_level, 0);

  core::TecFanPolicy policy2(opt);
  cfg.policy_manages_fan = true;
  const RunResult r2 = small_simulator().run(policy2, *wl, cfg);
  EXPECT_GT(r2.trace.back().fan_level, 0);
}

TEST(ChipSimulator, MaxSimTimeCapsRunaways) {
  auto wl = small_workload();
  core::FanOnlyPolicy policy;
  RunConfig cfg;
  cfg.threshold_k = 1e6;
  cfg.fan_level = 0;
  cfg.max_sim_time_s = 0.004;  // far less than the ~58 ms workload
  const RunResult r = small_simulator().run(policy, *wl, cfg);
  EXPECT_FALSE(r.completed);
  EXPECT_NEAR(r.exec_time_s, 0.004, 1e-9);
}

TEST(ChipSimulator, SensorNoiseChangesControlButStaysSeeded) {
  auto wl = small_workload();
  RunConfig cfg;
  core::FanTecPolicy p1, p2;
  cfg.threshold_k = celsius_to_kelvin(69.0);
  cfg.fan_level = 1;
  cfg.sensor_noise_k = 0.3;
  const RunResult a = small_simulator().run(p1, *wl, cfg);
  const RunResult b = small_simulator().run(p2, *wl, cfg);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);  // same seed, same run
}

// -------------------------------------------------------------- experiment
TEST(Experiment, BaseScenarioUsesTopEverything) {
  auto wl = small_workload();
  const RunResult base = measure_base_scenario(small_simulator(), *wl);
  EXPECT_TRUE(base.completed);
  EXPECT_EQ(base.fan_level, 0);
  EXPECT_EQ(base.policy, "base");
  EXPECT_DOUBLE_EQ(base.violation_frac, 0.0);  // unconstrained measurement
  EXPECT_DOUBLE_EQ(base.avg_dvfs, 0.0);
}

TEST(Experiment, SweepPicksSlowestHoldingLevel) {
  auto wl = small_workload();
  const RunResult base = measure_base_scenario(small_simulator(), *wl);
  SweepOptions opts;
  opts.threshold_k = base.peak_temp_k;
  // Fan-only holds only at the fastest level (threshold == its own peak).
  SweepResult sw = run_with_fan_sweep(
      small_simulator(), [] { return std::make_unique<core::FanOnlyPolicy>(); },
      *wl, opts);
  EXPECT_EQ(sw.chosen.fan_level, 0);
  // It scanned from the slowest level up to 0.
  EXPECT_EQ(sw.per_level.size(),
            static_cast<std::size_t>(small_models().fan.level_count()));
}

TEST(Experiment, SweepAcceptsRegulatingPolicyAtSlowLevels) {
  auto wl = small_workload();
  const RunResult base = measure_base_scenario(small_simulator(), *wl);
  SweepOptions opts;
  opts.threshold_k = base.peak_temp_k;
  // Fan+DVFS can regulate anywhere: picks the slowest level.
  SweepResult sw = run_with_fan_sweep(
      small_simulator(),
      [] { return std::make_unique<core::FanDvfsPolicy>(); }, *wl, opts);
  EXPECT_EQ(sw.chosen.fan_level, small_models().fan.level_count() - 1);
  EXPECT_EQ(sw.per_level.size(), 1u);  // first scanned level passed
}

TEST(Experiment, MeanDvfsBoundRestrictsChoice) {
  auto wl = small_workload();
  const RunResult base = measure_base_scenario(small_simulator(), *wl);
  SweepOptions opts;
  opts.threshold_k = base.peak_temp_k;
  opts.max_mean_dvfs = 0.0;  // no throttling allowed at all
  SweepResult sw = run_with_fan_sweep(
      small_simulator(),
      [] { return std::make_unique<core::FanDvfsPolicy>(); }, *wl, opts);
  // With throttling forbidden, Fan+DVFS behaves like Fan-only: only the
  // fastest level qualifies.
  EXPECT_EQ(sw.chosen.fan_level, 0);
}

TEST(Experiment, SweepRequiresThreshold) {
  auto wl = small_workload();
  SweepOptions opts;  // threshold unset
  EXPECT_THROW(
      run_with_fan_sweep(
          small_simulator(),
          [] { return std::make_unique<core::FanOnlyPolicy>(); }, *wl, opts),
      precondition_error);
}

TEST(ChipSimulator, TecEngageDelayDeratesFirstSubstep) {
  // With an (exaggerated) engage delay above half a substep, a device's
  // first substep is held off: cooling engages later, energy differs.
  auto wl = small_workload();
  RunConfig cfg;
  cfg.threshold_k = celsius_to_kelvin(69.0);
  cfg.fan_level = 1;
  core::FanTecPolicy p1, p2;
  cfg.tec_engage_delay_s = 0.0;
  const RunResult instant = small_simulator().run(p1, *wl, cfg);
  cfg.tec_engage_delay_s = 400e-6;  // ~0.8 of a 500 us substep
  const RunResult delayed = small_simulator().run(p2, *wl, cfg);
  EXPECT_GE(delayed.peak_temp_k, instant.peak_temp_k - 1e-9);
  // The paper's real 20 us delay is negligible at this substep length.
  core::FanTecPolicy p3;
  cfg.tec_engage_delay_s = 20e-6;
  const RunResult paper = small_simulator().run(p3, *wl, cfg);
  EXPECT_DOUBLE_EQ(paper.energy_j, instant.energy_j);
}

// ---------------------------------------------------------------- trace io
TEST(TraceIo, TraceRoundTrips) {
  auto wl = small_workload();
  core::FanTecPolicy policy;
  RunConfig cfg;
  cfg.threshold_k = celsius_to_kelvin(70.0);
  cfg.fan_level = 1;
  cfg.record_trace = true;
  const RunResult r = small_simulator().run(policy, *wl, cfg);
  ASSERT_FALSE(r.trace.empty());
  std::ostringstream os;
  write_trace_csv(os, r);
  const auto back = read_trace_csv(os.str());
  ASSERT_EQ(back.size(), r.trace.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_NEAR(back[i].time_s, r.trace[i].time_s, 1e-9);
    EXPECT_NEAR(back[i].peak_temp_k, r.trace[i].peak_temp_k, 1e-6);
    EXPECT_EQ(back[i].fan_level, r.trace[i].fan_level);
    EXPECT_EQ(back[i].tecs_on, r.trace[i].tecs_on);
    EXPECT_EQ(back[i].violation, r.trace[i].violation);
  }
}

TEST(TraceIo, SummaryCsvHasOneRowPerRun) {
  auto wl = small_workload();
  core::FanOnlyPolicy policy;
  RunConfig cfg;
  cfg.threshold_k = 1e6;
  cfg.fan_level = 0;
  std::vector<RunResult> results;
  results.push_back(small_simulator().run(policy, *wl, cfg));
  cfg.fan_level = 3;
  core::FanOnlyPolicy policy2;
  results.push_back(small_simulator().run(policy2, *wl, cfg));
  std::ostringstream os;
  write_summary_csv(os, results);
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 3u);  // header + 2 runs
  EXPECT_EQ(rows[1][0], "Fan-only");
  EXPECT_EQ(rows[2][2], "3");
}

TEST(TraceIo, RejectsForeignCsv) {
  EXPECT_THROW(read_trace_csv("a,b,c\n1,2,3\n"), precondition_error);
  EXPECT_THROW(read_trace_csv(""), precondition_error);
}

// ---------------------------------------------------------- shared engine
TEST(SharedEngine, SimulatorsAreCheapViewsOverOneEngine) {
  ChipSimulator a(small_engine());
  ChipSimulator b(small_engine());
  EXPECT_EQ(&a.models(), &b.models());
  EXPECT_EQ(&a.engine(), &b.engine());
  // Per-simulator scratch is a small fraction of the shared factorizations.
  EXPECT_GT(small_engine()->memory_bytes(), 4 * a.workspace_bytes());
  EXPECT_THROW(ChipSimulator{nullptr}, precondition_error);
}

// N threads each build their own simulator over ONE shared engine and run
// the same workload; every thread must reproduce the single-threaded result
// bit for bit. Run under TSan (tier1.sh builds this test with
// -fsanitize=thread) this also pins the engine's const-correctness: any
// hidden mutation through the shared factorizations is a reported race.
TEST(SharedEngine, CrossThreadRunsAreBitExact) {
  auto wl = small_workload();
  RunConfig cfg;
  cfg.threshold_k = celsius_to_kelvin(70.0);
  cfg.fan_level = 1;

  // Single-threaded reference.
  ChipSimulator reference(small_engine());
  core::FanTecPolicy ref_policy;
  const RunResult expect = reference.run(ref_policy, *wl, cfg);
  const linalg::Vector expect_eq = reference.equilibrium(
      *wl, core::KnobState::initial(4, small_models().thermal->tec_count(),
                                    cfg.fan_level));

  constexpr int kThreads = 4;
  std::vector<RunResult> results(kThreads);
  std::vector<linalg::Vector> equilibria(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        ChipSimulator simulator(small_engine());
        core::FanTecPolicy policy;
        results[static_cast<std::size_t>(i)] = simulator.run(policy, *wl, cfg);
        equilibria[static_cast<std::size_t>(i)] = simulator.equilibrium(
            *wl, core::KnobState::initial(
                     4, small_models().thermal->tec_count(), cfg.fan_level));
      });
    }
    for (auto& t : threads) t.join();
  }

  for (int i = 0; i < kThreads; ++i) {
    const RunResult& r = results[static_cast<std::size_t>(i)];
    EXPECT_EQ(r.energy_j, expect.energy_j) << "thread " << i;
    EXPECT_EQ(r.peak_temp_k, expect.peak_temp_k) << "thread " << i;
    EXPECT_EQ(r.exec_time_s, expect.exec_time_s) << "thread " << i;
    EXPECT_EQ(r.violation_frac, expect.violation_frac) << "thread " << i;
    const linalg::Vector& eq = equilibria[static_cast<std::size_t>(i)];
    ASSERT_EQ(eq.size(), expect_eq.size());
    for (std::size_t n = 0; n < eq.size(); ++n)
      EXPECT_EQ(eq[n], expect_eq[n]) << "thread " << i << " node " << n;
  }
}

}  // namespace
}  // namespace tecfan::sim
