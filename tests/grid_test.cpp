// Grid-vs-block thermal cross-validation, plus Dynamic-fan policy tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/dynamic_fan_policy.h"
#include "sim/server_system.h"
#include "thermal/grid_model.h"
#include "thermal/network.h"
#include "thermal/solvers.h"
#include "util/error.h"
#include "util/stats.h"

namespace tecfan {
namespace {

using thermal::ChipThermalModel;
using thermal::Floorplan;
using thermal::GridThermalModel;

const GridThermalModel& grid22() {
  static const GridThermalModel g(Floorplan::scc(2, 2),
                                  thermal::PackageParameters{}, 26, 36);
  return g;
}

std::shared_ptr<const ChipThermalModel> block22() {
  static auto m = std::make_shared<const ChipThermalModel>(
      Floorplan::scc(2, 2), thermal::PackageParameters{},
      thermal::TecParameters{});
  return m;
}

TEST(GridModel, ZeroPowerIsAmbient) {
  const linalg::Vector p(grid22().floorplan().component_count(), 0.0);
  const auto t = grid22().steady(p, 40.0);
  for (double v : t)
    EXPECT_NEAR(v, thermal::PackageParameters{}.ambient_k, 1e-5);
}

TEST(GridModel, EnergyConservation) {
  const double per_comp = 0.35;
  const linalg::Vector p(grid22().floorplan().component_count(), per_comp);
  const auto t = grid22().steady(p, 40.0);
  // All injected heat leaves through convection (fixed + airflow).
  const thermal::PackageParameters pkg;
  const double g_conv = pkg.convection_g_total(40.0);
  // Average sink temperature weighted equally per tile.
  double sink_avg = 0.0;
  const auto n_cells = grid22().cell_count();
  const int n_tiles = grid22().floorplan().core_count();
  for (int i = 0; i < n_tiles; ++i)
    sink_avg += t[n_cells + static_cast<std::size_t>(n_tiles + i)];
  sink_avg /= n_tiles;
  const double heat_out = g_conv * (sink_avg - pkg.ambient_k);
  const double heat_in =
      per_comp * grid22().floorplan().component_count();
  EXPECT_NEAR(heat_out, heat_in, 0.01 * heat_in);
}

TEST(GridModel, MoreAirflowIsCooler) {
  const linalg::Vector p(grid22().floorplan().component_count(), 0.4);
  const auto slow = grid22().steady(p, 10.0);
  const auto fast = grid22().steady(p, 60.0);
  EXPECT_LT(grid22().peak_die_temp(fast), grid22().peak_die_temp(slow));
}

TEST(GridModel, HotComponentShowsUpOnTheGrid) {
  linalg::Vector p(grid22().floorplan().component_count(), 0.05);
  const std::size_t hot = grid22().floorplan().index_of(
      3, thermal::ComponentKind::kFpMul);
  p[hot] = 1.5;
  const auto t = grid22().steady(p, 40.0);
  const auto comp_t = grid22().component_temps(t);
  for (std::size_t i = 0; i < comp_t.size(); ++i) {
    if (i != hot) {
      EXPECT_GT(comp_t[hot], comp_t[i]);
    }
  }
}

TEST(GridModel, CrossValidatesBlockModel) {
  // The headline validation: for a cholesky-like power map with TECs off,
  // the block model's per-component temperatures track the fine grid's
  // within a few kelvin, and the peaks agree.
  auto block = block22();
  thermal::SteadyStateSolver solver(thermal::make_thermal_engine(block));
  linalg::Vector p(block->component_count(), 0.0);
  for (std::size_t i = 0; i < block->component_count(); ++i) {
    const auto kind = block->floorplan().component(i).kind;
    const double density =
        thermal::is_logic_block(kind) ? 1.2e6 : 0.5e6;  // W/m^2
    p[i] = density * block->floorplan().component(i).rect.area();
  }
  const auto t_block = solver.solve(p, block->make_cooling_state(45.0));
  const auto t_grid_nodes = grid22().steady(p, 45.0);
  const auto t_grid = grid22().component_temps(t_grid_nodes);

  linalg::Vector block_comp(block->component_count());
  for (std::size_t i = 0; i < block->component_count(); ++i)
    block_comp[i] = t_block[block->die_node(i)];

  EXPECT_LT(rmse(block_comp, t_grid), 2.5);
  double block_peak = 0.0;
  for (double v : block_comp) block_peak = std::max(block_peak, v);
  EXPECT_NEAR(block_peak, grid22().peak_die_temp(t_grid_nodes), 4.0);
}

TEST(GridModel, RefinementConverges) {
  // Doubling the grid resolution barely moves component temperatures.
  const Floorplan fp = Floorplan::scc(1, 1);
  const GridThermalModel coarse(fp, thermal::PackageParameters{}, 13, 18);
  const GridThermalModel fine(fp, thermal::PackageParameters{}, 26, 36);
  linalg::Vector p(fp.component_count(), 0.3);
  const auto tc = coarse.component_temps(coarse.steady(p, 40.0));
  const auto tf = fine.component_temps(fine.steady(p, 40.0));
  EXPECT_LT(max_abs_diff(tc, tf), 1.0);
}

TEST(GridModel, InputValidation) {
  EXPECT_THROW(GridThermalModel(Floorplan::scc(1, 1),
                                thermal::PackageParameters{}, 0, 10),
               precondition_error);
  const linalg::Vector wrong(3, 0.0);
  EXPECT_THROW(grid22().steady(wrong, 40.0), precondition_error);
}

// ------------------------------------------------------------ dynamic fan
TEST(DynamicFan, SpeedsUpWhenHotSlowsWhenCool) {
  auto thermal_model = std::make_shared<const sim::ServerThermalModel>();
  sim::ServerConfig cfg;
  sim::ServerPlanningModel planner(thermal_model, cfg);
  sim::ServerPlanningModel::Observation obs;
  obs.demand.assign(4, 0.5);
  obs.applied = core::KnobState::initial(4, 4, 3);

  core::PolicyOptions opt;
  opt.manage_fan = true;
  opt.fan_period_intervals = 1;
  core::DynamicFanPolicy policy(opt);

  obs.core_temps_k.assign(4, cfg.threshold_k + 2.0);  // hot
  planner.observe(obs);
  EXPECT_EQ(policy.decide(planner, obs.applied).fan_level, 2);

  obs.core_temps_k.assign(4, cfg.threshold_k - 10.0);  // cool
  planner.observe(obs);
  core::DynamicFanPolicy policy2(opt);
  EXPECT_EQ(policy2.decide(planner, obs.applied).fan_level, 4);
}

TEST(DynamicFan, HoldsInsideTheMargin) {
  auto thermal_model = std::make_shared<const sim::ServerThermalModel>();
  sim::ServerConfig cfg;
  sim::ServerPlanningModel planner(thermal_model, cfg);
  sim::ServerPlanningModel::Observation obs;
  obs.demand.assign(4, 0.5);
  obs.applied = core::KnobState::initial(4, 4, 3);
  obs.core_temps_k.assign(4, cfg.threshold_k - 0.2);  // within margin
  planner.observe(obs);
  core::PolicyOptions opt;
  opt.manage_fan = true;
  opt.fan_period_intervals = 1;
  core::DynamicFanPolicy policy(opt);
  EXPECT_EQ(policy.decide(planner, obs.applied).fan_level, 3);
}

TEST(DynamicFan, RespectsFanCadence) {
  auto thermal_model = std::make_shared<const sim::ServerThermalModel>();
  sim::ServerConfig cfg;
  sim::ServerPlanningModel planner(thermal_model, cfg);
  sim::ServerPlanningModel::Observation obs;
  obs.demand.assign(4, 0.5);
  obs.applied = core::KnobState::initial(4, 4, 3);
  obs.core_temps_k.assign(4, cfg.threshold_k + 5.0);
  planner.observe(obs);
  core::PolicyOptions opt;
  opt.manage_fan = true;
  opt.fan_period_intervals = 10;
  core::DynamicFanPolicy policy(opt);
  EXPECT_EQ(policy.decide(planner, obs.applied).fan_level, 2);  // turn 0
  EXPECT_EQ(policy.decide(planner, obs.applied).fan_level, 3);  // off-cadence
}

}  // namespace
}  // namespace tecfan
