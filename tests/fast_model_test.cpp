// FastChipPlanningModel (incremental per-core evaluation) vs the exact
// global ChipPlanningModel: agreement bounds and speed-relevant invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/chip_planning_model.h"
#include "core/fast_planning_model.h"
#include "core/tecfan_policy.h"
#include "sim/defaults.h"
#include "thermal/solvers.h"
#include "util/error.h"
#include "util/rng.h"

namespace tecfan::core {
namespace {

const sim::ChipModels& models() {
  static const sim::ChipModels m = sim::make_chip_models(2, 2);
  return m;
}

const std::shared_ptr<const thermal::ThermalEngine>& engine() {
  static const auto e = thermal::make_thermal_engine(models().thermal);
  return e;
}

ChipPlanningModel::Config config() {
  ChipPlanningModel::Config cfg;
  cfg.fan = models().fan;
  cfg.dvfs = models().dvfs;
  cfg.leakage = models().leak_linear;
  cfg.threshold_k = 363.15;
  return cfg;
}

ChipPlanningModel::Observation observation(int fan_level = 1) {
  const auto& model = *models().thermal;
  ChipPlanningModel::Observation obs;
  obs.comp_temps_k.assign(model.component_count(), 352.0);
  // Non-uniform powers so per-core deltas are non-trivial.
  obs.comp_dyn_power_w.assign(model.component_count(), 0.0);
  Rng rng(17);
  for (auto& p : obs.comp_dyn_power_w) p = rng.uniform(0.1, 0.7);
  obs.core_ips.assign(4, 1.1e9);
  obs.applied = KnobState::initial(4, model.tec_count(), fan_level);
  obs.applied.dvfs = {0, 1, 0, 2};
  obs.applied.tec_on[3] = 1;
  return obs;
}

struct Pair {
  ChipPlanningModel exact{engine(), config()};
  FastChipPlanningModel fast{engine(), config()};

  explicit Pair(const ChipPlanningModel::Observation& obs) {
    exact.observe(obs);
    fast.observe(obs);
  }
};

TEST(FastModel, BaselinePredictionIsExact) {
  const auto obs = observation();
  Pair p(obs);
  const Prediction e = p.exact.predict(obs.applied);
  const Prediction f = p.fast.predict(obs.applied);
  EXPECT_NEAR(f.max_temp_k(), e.max_temp_k(), 1e-9);
  EXPECT_NEAR(f.epi(), e.epi(), 1e-12);
  EXPECT_EQ(p.fast.incremental_predictions(), 0u);  // cache hit
}

TEST(FastModel, SingleTecToggleTracksExactModel) {
  const auto obs = observation();
  Pair p(obs);
  KnobState k = obs.applied;
  k.tec_on[5] = 1;  // a device on core 0
  const Prediction e = p.exact.predict(k);
  const Prediction f = p.fast.predict(k);
  EXPECT_EQ(p.fast.incremental_predictions(), 1u);
  // Spot temps within a fraction of a kelvin (boundary approximation).
  for (std::size_t s = 0; s < e.spot_temps_k.size(); ++s)
    EXPECT_NEAR(f.spot_temps_k[s], e.spot_temps_k[s], 0.35) << s;
  EXPECT_NEAR(f.power.total_w(), e.power.total_w(),
              0.01 * e.power.total_w());
  EXPECT_NEAR(f.ips, e.ips, 1);
}

TEST(FastModel, SingleDvfsStepTracksExactModel) {
  const auto obs = observation();
  Pair p(obs);
  KnobState k = obs.applied;
  k.dvfs[2] = 2;  // a two-level jump: a large per-core power swing
  const Prediction e = p.exact.predict(k);
  const Prediction f = p.fast.predict(k);
  // The locality approximation holds neighbours at the baseline, so the
  // changed core reads slightly hot when it sheds a lot of power; ~2 K for
  // this (aggressive) two-level candidate, well under the swing itself.
  for (std::size_t s = 0; s < e.spot_temps_k.size(); ++s)
    EXPECT_NEAR(f.spot_temps_k[s], e.spot_temps_k[s], 2.0) << s;
  EXPECT_NEAR(f.power.dynamic_w, e.power.dynamic_w, 1e-6);
  EXPECT_NEAR(f.ips, e.ips, 1);
  EXPECT_NEAR(f.epi(), e.epi(), 0.02 * e.epi());
}

TEST(FastModel, MultiCoreChangesStillTrack) {
  const auto obs = observation();
  Pair p(obs);
  KnobState k = obs.applied;
  k.dvfs = {1, 2, 1, 3};
  k.tec_on[0] = k.tec_on[11] = k.tec_on[20] = 1;
  const Prediction e = p.exact.predict(k);
  const Prediction f = p.fast.predict(k);
  for (std::size_t s = 0; s < e.spot_temps_k.size(); ++s)
    EXPECT_NEAR(f.spot_temps_k[s], e.spot_temps_k[s], 2.5) << s;
  EXPECT_NEAR(f.power.total_w(), e.power.total_w(),
              0.02 * e.power.total_w());
}

TEST(FastModel, FanChangeFallsBackToGlobalPath) {
  const auto obs = observation();
  Pair p(obs);
  KnobState k = obs.applied;
  k.fan_level = 4;
  const Prediction e = p.exact.predict(k);
  const Prediction f = p.fast.predict(k);
  EXPECT_EQ(p.fast.global_predictions(), 1u);
  EXPECT_NEAR(f.max_temp_k(), e.max_temp_k(), 1e-9);  // identical path
}

TEST(FastModel, TecFanDecisionsAgreeWithExactModel) {
  // Run TECfan's decision procedure on both models from the same hot
  // observation; the chosen knob configurations should be equivalent in
  // predicted outcome (same EPI within a couple of percent, both meeting
  // the constraint when feasible).
  auto obs = observation(/*fan_level=*/3);
  for (auto& t : obs.comp_temps_k) t = 361.0;  // near the 363.15 threshold
  Pair p(obs);
  PolicyOptions opt;
  opt.constraint_margin_k = 0.0;
  TecFanPolicy pol_exact(opt), pol_fast(opt);
  const KnobState ke = pol_exact.decide(p.exact, obs.applied);
  const KnobState kf = pol_fast.decide(p.fast, obs.applied);
  const Prediction pe = p.exact.predict(ke);
  const Prediction pf = p.exact.predict(kf);  // judge both on the exact model
  EXPECT_NEAR(pf.epi(), pe.epi(), 0.03 * pe.epi());
}

TEST(FastModel, InterfaceDelegatesToExact) {
  const auto obs = observation();
  Pair p(obs);
  EXPECT_EQ(p.fast.core_count(), p.exact.core_count());
  EXPECT_EQ(p.fast.tec_count(), p.exact.tec_count());
  EXPECT_EQ(p.fast.spot_count(), p.exact.spot_count());
  EXPECT_DOUBLE_EQ(p.fast.threshold_k(), p.exact.threshold_k());
  EXPECT_EQ(p.fast.tecs_over(0).size(), p.exact.tecs_over(0).size());
  EXPECT_THROW(
      FastChipPlanningModel(nullptr, config()), precondition_error);
}

TEST(FastModel, PredictBeforeObserveThrows) {
  FastChipPlanningModel fast(engine(), config());
  EXPECT_THROW(fast.predict(KnobState::initial(4, 36)), precondition_error);
}

}  // namespace
}  // namespace tecfan::core
