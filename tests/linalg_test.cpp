#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "linalg/banded.h"
#include "linalg/cholesky.h"
#include "linalg/iterative.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "linalg/systolic.h"
#include "linalg/woodbury.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace tecfan::linalg {
namespace {

DenseMatrix random_diag_dominant(std::size_t n, Rng& rng,
                                 bool symmetric = false) {
  DenseMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  if (symmetric)
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < r; ++c) a(r, c) = a(c, r);
  for (std::size_t r = 0; r < n; ++r) a(r, r) = static_cast<double>(n) + 2.0;
  return a;
}

Vector random_vector(std::size_t n, Rng& rng) {
  Vector v(n);
  for (auto& x : v) x = rng.uniform(-2.0, 2.0);
  return v;
}

double residual_norm(const DenseMatrix& a, const Vector& x, const Vector& b) {
  Vector ax(b.size());
  a.matvec(x, ax);
  return max_abs_diff(ax, b);
}

// ---------------------------------------------------------------- matrix
TEST(DenseMatrix, IdentityMatvec) {
  const DenseMatrix i = DenseMatrix::identity(4);
  const Vector x = {1, 2, 3, 4};
  Vector y(4);
  i.matvec(x, y);
  EXPECT_EQ(x, y);
}

TEST(DenseMatrix, MatvecKnownValues) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Vector x = {1, 1, 1};
  Vector y(2);
  a.matvec(x, y);
  EXPECT_DOUBLE_EQ(y[0], 6);
  EXPECT_DOUBLE_EQ(y[1], 15);
  Vector z(3);
  const Vector w = {1, 1};
  a.matvec_transpose(w, z);
  EXPECT_DOUBLE_EQ(z[0], 5);
  EXPECT_DOUBLE_EQ(z[2], 9);
}

TEST(DenseMatrix, SymmetryCheck) {
  Rng rng(5);
  EXPECT_TRUE(random_diag_dominant(6, rng, true).is_symmetric());
  DenseMatrix a = random_diag_dominant(6, rng, true);
  a(0, 5) += 1e-6;
  EXPECT_FALSE(a.is_symmetric(1e-9));
  EXPECT_TRUE(a.is_symmetric(1e-3));
}

TEST(VectorOps, DotNormAxpy) {
  const Vector a = {3, 4};
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 4.0);
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  Vector b = {1, 1};
  axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(b[0], 7);
  EXPECT_DOUBLE_EQ(b[1], 9);
  EXPECT_THROW(dot(a, Vector{1}), precondition_error);
}

// -------------------------------------------------------------------- lu
class LuSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuSizes, SolvesRandomSystems) {
  Rng rng(GetParam() * 7 + 1);
  const DenseMatrix a = random_diag_dominant(GetParam(), rng);
  const Vector b = random_vector(GetParam(), rng);
  const LuFactorization lu(a);
  const Vector x = lu.solve(b);
  EXPECT_LT(residual_norm(a, x, b), 1e-9);
}

TEST_P(LuSizes, SolveTransposeConsistent) {
  Rng rng(GetParam() * 11 + 3);
  const DenseMatrix a = random_diag_dominant(GetParam(), rng);
  const Vector b = random_vector(GetParam(), rng);
  const Vector x = LuFactorization(a).solve_transpose(b);
  // Residual of A^T x = b.
  Vector atx(b.size());
  a.matvec_transpose(x, atx);
  EXPECT_LT(max_abs_diff(atx, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizes,
                         ::testing::Values(1, 2, 3, 5, 16, 40, 97));

TEST(Lu, DetectsSingularity) {
  DenseMatrix a(3, 3);  // rank 1
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = 1.0;
  EXPECT_THROW(LuFactorization{a}, numerical_error);
}

TEST(Lu, PivotingHandlesZeroLeadingDiagonal) {
  DenseMatrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const Vector x = LuFactorization(a).solve(Vector{2.0, 3.0});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(Lu, DeterminantKnownValues) {
  DenseMatrix a(2, 2);
  a(0, 0) = 3;
  a(0, 1) = 1;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_NEAR(LuFactorization(a).determinant(), 10.0, 1e-12);
  EXPECT_NEAR(LuFactorization(DenseMatrix::identity(5)).determinant(), 1.0,
              1e-12);
}

TEST(Lu, SolveInPlaceMatchesSolve) {
  Rng rng(77);
  const DenseMatrix a = random_diag_dominant(12, rng);
  const Vector b = random_vector(12, rng);
  const LuFactorization lu(a);
  Vector x = b;
  lu.solve_in_place(x);
  EXPECT_LT(max_abs_diff(x, lu.solve(b)), 1e-13);
}

TEST(Lu, RejectsNonSquare) {
  EXPECT_THROW(LuFactorization(DenseMatrix(2, 3)), precondition_error);
}

// -------------------------------------------------------------- cholesky
class CholeskySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizes, MatchesLuOnSpdSystems) {
  Rng rng(GetParam() * 13 + 5);
  const DenseMatrix a = random_diag_dominant(GetParam(), rng, true);
  const Vector b = random_vector(GetParam(), rng);
  const Vector x_chol = CholeskyFactorization(a).solve(b);
  const Vector x_lu = LuFactorization(a).solve(b);
  EXPECT_LT(max_abs_diff(x_chol, x_lu), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizes,
                         ::testing::Values(1, 2, 8, 33, 64));

TEST(Cholesky, RejectsIndefinite) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_THROW(CholeskyFactorization{a}, numerical_error);
}

// ---------------------------------------------------------------- sparse
TEST(Sparse, BuilderAccumulatesDuplicates) {
  SparseBuilder b(3, 3);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.0);
  b.add(1, 2, -4.0);
  const SparseMatrix m = b.build();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), -4.0);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 0.0);
  EXPECT_EQ(m.nonzeros(), 2u);
}

TEST(Sparse, ConductanceStampIsSymmetricWithZeroRowSum) {
  SparseBuilder b(4, 4);
  b.add_conductance(0, 2, 1.5);
  b.add_conductance(1, 3, 0.5);
  const SparseMatrix m = b.build();
  EXPECT_DOUBLE_EQ(m.asymmetry(), 0.0);
  const Vector ones(4, 1.0);
  Vector y(4);
  m.matvec(ones, y);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-14);
}

TEST(Sparse, MatvecMatchesDense) {
  Rng rng(31);
  SparseBuilder b(20, 20);
  for (int k = 0; k < 60; ++k)
    b.add(rng.below(20), rng.below(20), rng.uniform(-1, 1));
  for (std::size_t i = 0; i < 20; ++i) b.add_to_diagonal(i, 25.0);
  const SparseMatrix m = b.build();
  const DenseMatrix d = m.to_dense();
  const Vector x = random_vector(20, rng);
  Vector ys(20), yd(20);
  m.matvec(x, ys);
  d.matvec(x, yd);
  EXPECT_LT(max_abs_diff(ys, yd), 1e-12);
}

TEST(Sparse, CancellingEntriesDropped) {
  SparseBuilder b(2, 2);
  b.add(0, 1, 1.0);
  b.add(0, 1, -1.0);
  EXPECT_EQ(b.build().nonzeros(), 0u);
}

TEST(Sparse, IndexGuards) {
  SparseBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), precondition_error);
  EXPECT_THROW(b.add_conductance(1, 1, 1.0), precondition_error);
}

// ------------------------------------------------------------- iterative
class IterativeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IterativeSizes, CgMatchesDirectOnSpd) {
  Rng rng(GetParam() * 3 + 11);
  const std::size_t n = GetParam();
  SparseBuilder b(n, n);
  // Chain conductances: SPD after grounding.
  for (std::size_t i = 0; i + 1 < n; ++i)
    b.add_conductance(i, i + 1, 1.0 + rng.uniform());
  for (std::size_t i = 0; i < n; ++i)
    b.add_to_diagonal(i, 0.1 + rng.uniform());
  const SparseMatrix m = b.build();
  const Vector rhs = random_vector(n, rng);
  const IterativeResult res = conjugate_gradient(m, rhs);
  EXPECT_TRUE(res.converged);
  const Vector x_direct = LuFactorization(m.to_dense()).solve(rhs);
  EXPECT_LT(max_abs_diff(res.x, x_direct), 1e-6);
}

TEST_P(IterativeSizes, BicgstabMatchesDirectOnNonsymmetric) {
  Rng rng(GetParam() * 5 + 17);
  const std::size_t n = GetParam();
  SparseBuilder b(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i)
    b.add_conductance(i, i + 1, 1.0 + rng.uniform());
  for (std::size_t i = 0; i < n; ++i)
    b.add_to_diagonal(i, 0.5 + rng.uniform());
  // Asymmetric Peltier-like diagonal perturbations plus an off-diagonal.
  b.add(0, n - 1, 0.05);
  const SparseMatrix m = b.build();
  const Vector rhs = random_vector(n, rng);
  const IterativeResult res = bicgstab(m, rhs);
  EXPECT_TRUE(res.converged);
  const Vector x_direct = LuFactorization(m.to_dense()).solve(rhs);
  EXPECT_LT(max_abs_diff(res.x, x_direct), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, IterativeSizes,
                         ::testing::Values(2, 5, 20, 100));

TEST(Iterative, ZeroRhsConvergesImmediately) {
  SparseBuilder b(3, 3);
  for (std::size_t i = 0; i < 3; ++i) b.add_to_diagonal(i, 1.0);
  const SparseMatrix m = b.build();
  const Vector zero(3, 0.0);
  EXPECT_TRUE(conjugate_gradient(m, zero).converged);
  EXPECT_TRUE(bicgstab(m, zero).converged);
}

TEST(Iterative, CgRejectsIndefinite) {
  SparseBuilder b(2, 2);
  b.add_to_diagonal(0, 1.0);
  b.add_to_diagonal(1, -1.0);
  const SparseMatrix m = b.build();
  IterativeOptions opts;
  opts.jacobi_preconditioner = false;
  EXPECT_THROW(conjugate_gradient(m, Vector{1.0, 1.0}, opts),
               numerical_error);
}

// ---------------------------------------------------------------- banded
class BandWidths : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BandWidths, SolveMatchesDense) {
  const auto [kl, ku] = GetParam();
  Rng rng(static_cast<std::uint64_t>(kl * 10 + ku));
  const std::size_t n = 30;
  BandMatrix a(n, static_cast<std::size_t>(kl), static_cast<std::size_t>(ku));
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      if (a.in_band(r, c))
        a.at(r, c) = (r == c) ? 10.0 + rng.uniform() : rng.uniform(-1, 1);
  const Vector b = random_vector(n, rng);
  const Vector x_band = BandLu(a).solve(b);
  const Vector x_dense = LuFactorization(a.to_dense()).solve(b);
  EXPECT_LT(max_abs_diff(x_band, x_dense), 1e-9);
}

TEST_P(BandWidths, MatvecMatchesDense) {
  const auto [kl, ku] = GetParam();
  Rng rng(static_cast<std::uint64_t>(kl * 100 + ku));
  const std::size_t n = 25;
  BandMatrix a(n, static_cast<std::size_t>(kl), static_cast<std::size_t>(ku));
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      if (a.in_band(r, c)) a.at(r, c) = rng.uniform(-1, 1);
  const Vector x = random_vector(n, rng);
  Vector yb(n), yd(n);
  a.matvec(x, yb);
  a.to_dense().matvec(x, yd);
  EXPECT_LT(max_abs_diff(yb, yd), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Widths, BandWidths,
    ::testing::Values(std::make_pair(0, 0), std::make_pair(1, 0),
                      std::make_pair(0, 1), std::make_pair(1, 1),
                      std::make_pair(3, 2), std::make_pair(5, 5)));

TEST(Banded, FromDenseValidatesBand) {
  DenseMatrix d(4, 4);
  d(0, 0) = 1;
  d(3, 0) = 0.5;  // outside a (1,1) band
  EXPECT_THROW(BandMatrix::from_dense(d, 1, 1), precondition_error);
  EXPECT_NO_THROW(BandMatrix::from_dense(d, 3, 1));
}

TEST(Banded, OutOfBandReadsZero) {
  BandMatrix a(5, 1, 1);
  a.at(2, 2) = 7.0;
  EXPECT_DOUBLE_EQ(a.get(2, 2), 7.0);
  EXPECT_DOUBLE_EQ(a.get(0, 4), 0.0);
  EXPECT_THROW(a.at(0, 4), precondition_error);
}

// --------------------------------------------------------------- band lu
BandMatrix random_band(std::size_t n, std::size_t kl, std::size_t ku,
                       Rng& rng, bool diag_dominant = true) {
  BandMatrix a(n, kl, ku);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      if (a.in_band(r, c)) a.at(r, c) = rng.uniform(-1.0, 1.0);
  if (diag_dominant)
    for (std::size_t r = 0; r < n; ++r)
      a.at(r, r) = static_cast<double>(kl + ku) + 2.0;
  return a;
}

class BandLuWidths
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(BandLuWidths, MatchesDenseLu) {
  const auto [kl, ku] = GetParam();
  Rng rng(kl * 31 + ku + 5);
  const std::size_t n = 30;
  const BandMatrix a = random_band(n, kl, ku, rng);
  const BandLu lu(a);
  const Vector b = random_vector(n, rng);
  const Vector x = lu.solve(b);
  const Vector x_dense = LuFactorization(a.to_dense()).solve(b);
  EXPECT_LT(max_abs_diff(x, x_dense), 1e-10);
  EXPECT_LT(residual_norm(a.to_dense(), x, b), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Widths, BandLuWidths,
    ::testing::Values(std::make_pair(0, 0), std::make_pair(1, 0),
                      std::make_pair(0, 2), std::make_pair(1, 1),
                      std::make_pair(4, 2), std::make_pair(7, 7)));

TEST(BandLu, PivotsThroughZeroLeadingDiagonal) {
  // a(0,0) = 0 forces a row interchange at the very first elimination
  // step; an unpivoted factorization would divide by zero.
  BandMatrix a(4, 1, 1);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 1.0;
  a.at(1, 2) = -1.0;
  a.at(2, 1) = 0.5;
  a.at(2, 2) = 3.0;
  a.at(2, 3) = 1.0;
  a.at(3, 2) = -2.0;
  a.at(3, 3) = 1.5;
  const BandLu lu(a);
  const Vector b = {1.0, -2.0, 0.5, 3.0};
  const Vector x = lu.solve(b);
  EXPECT_LT(residual_norm(a.to_dense(), x, b), 1e-12);
}

TEST(BandLu, SingularMatrixThrows) {
  BandMatrix a(3, 1, 1);  // column 1 is identically zero
  a.at(0, 0) = 1.0;
  a.at(2, 2) = 1.0;
  EXPECT_THROW(BandLu{a}, numerical_error);
}

TEST(BandLu, SolveInPlaceMatchesSolve) {
  Rng rng(21);
  const std::size_t n = 25;
  const BandMatrix a = random_band(n, 3, 2, rng);
  const BandLu lu(a);
  const Vector b = random_vector(n, rng);
  const Vector x = lu.solve(b);
  Vector y = b;
  lu.solve_in_place(y);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(BandLu, SolveMultiMatchesPerColumnSolves) {
  Rng rng(22);
  const std::size_t n = 31;
  const BandMatrix a = random_band(n, 4, 3, rng);
  const BandLu lu(a);
  // More right-hand sides than the solve_multi block width, so the test
  // crosses a block boundary.
  const std::size_t m = 101;
  DenseMatrix b(n, m);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < m; ++c) b(r, c) = rng.uniform(-2.0, 2.0);
  DenseMatrix solved = b;
  lu.solve_multi(solved);
  // The blocked kernel scales by a precomputed reciprocal where the
  // single-RHS path divides, so agreement is to rounding, not bit-exact.
  for (std::size_t c = 0; c < m; ++c) {
    Vector rhs(n);
    for (std::size_t r = 0; r < n; ++r) rhs[r] = b(r, c);
    const Vector x = lu.solve(rhs);
    for (std::size_t r = 0; r < n; ++r)
      EXPECT_NEAR(solved(r, c), x[r], 1e-12);
  }
}

// --------------------------------------------------------- band cholesky
BandMatrix random_spd_band(std::size_t n, std::size_t kd, Rng& rng) {
  BandMatrix a(n, kd, kd);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < r; ++c)
      if (a.in_band(r, c)) {
        const double v = rng.uniform(-1.0, 1.0);
        a.at(r, c) = v;
        a.at(c, r) = v;
      }
  for (std::size_t r = 0; r < n; ++r)
    a.at(r, r) = 2.0 * static_cast<double>(kd) + 2.0;
  return a;
}

TEST(BandCholesky, MatchesDenseCholeskyOnSpdBand) {
  Rng rng(31);
  const std::size_t n = 28;
  const BandMatrix a = random_spd_band(n, 4, rng);
  const BandCholesky chol(a);
  const Vector b = random_vector(n, rng);
  const Vector x = chol.solve(b);
  const Vector x_dense = CholeskyFactorization(a.to_dense()).solve(b);
  EXPECT_LT(max_abs_diff(x, x_dense), 1e-11);
  EXPECT_LT(residual_norm(a.to_dense(), x, b), 1e-11);
}

TEST(BandCholesky, RejectsIndefiniteAndAsymmetricBands) {
  BandMatrix indefinite(3, 1, 1);
  indefinite.at(0, 0) = 1.0;
  indefinite.at(1, 1) = -2.0;  // negative pivot
  indefinite.at(2, 2) = 1.0;
  EXPECT_THROW(BandCholesky{indefinite}, numerical_error);
  const BandMatrix lopsided(4, 2, 1);  // kl != ku cannot be symmetric
  EXPECT_THROW(BandCholesky{lopsided}, precondition_error);
}

TEST(BandCholesky, SolveVariantsAgree) {
  Rng rng(32);
  const std::size_t n = 26;
  const BandMatrix a = random_spd_band(n, 3, rng);
  const BandCholesky chol(a);
  const std::size_t m = 53;  // crosses the solve_multi block width
  DenseMatrix b(n, m);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < m; ++c) b(r, c) = rng.uniform(-2.0, 2.0);
  DenseMatrix solved = b;
  chol.solve_multi(solved);
  for (std::size_t c = 0; c < m; ++c) {
    Vector rhs(n);
    for (std::size_t r = 0; r < n; ++r) rhs[r] = b(r, c);
    Vector in_place = rhs;
    chol.solve_in_place(in_place);
    const Vector x = chol.solve(rhs);
    for (std::size_t r = 0; r < n; ++r) {
      EXPECT_EQ(in_place[r], x[r]);  // solve() delegates to solve_in_place
      // The blocked kernel scales by a reciprocal where the single-RHS
      // path divides: agreement is to rounding, not bit-exact.
      EXPECT_NEAR(solved(r, c), x[r], 1e-12);
    }
  }
}

// -------------------------------------------------------------- woodbury
std::shared_ptr<const FactoredOperator> factor(const DenseMatrix& a0) {
  return std::make_shared<const FactoredOperator>(a0);
}

class WoodburyRanks : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WoodburyRanks, MatchesDirectRefactor) {
  Rng rng(GetParam() * 19 + 2);
  const std::size_t n = 40;
  const DenseMatrix a0 = random_diag_dominant(n, rng);
  UpdateWorkspace solver(factor(a0));

  std::vector<std::pair<std::size_t, double>> updates;
  DenseMatrix a1 = a0;
  for (std::size_t k = 0; k < GetParam(); ++k) {
    const std::size_t node = rng.below(n);
    const double delta = rng.uniform(-0.5, 3.0);
    updates.push_back({node, delta});
    a1(node, node) += delta;
  }
  solver.set_updates(updates);
  const Vector b = random_vector(n, rng);
  const Vector x_wood = solver.solve(b);
  const Vector x_direct = LuFactorization(a1).solve(b);
  EXPECT_LT(max_abs_diff(x_wood, x_direct), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Ranks, WoodburyRanks,
                         ::testing::Values(0, 1, 2, 5, 17, 39));

TEST(Woodbury, DuplicateNodesAccumulate) {
  Rng rng(9);
  const std::size_t n = 10;
  const DenseMatrix a0 = random_diag_dominant(n, rng);
  UpdateWorkspace solver(factor(a0));
  solver.set_updates({{3, 1.0}, {3, 2.0}});
  EXPECT_EQ(solver.update_rank(), 1u);
  DenseMatrix a1 = a0;
  a1(3, 3) += 3.0;
  const Vector b = random_vector(n, rng);
  EXPECT_LT(max_abs_diff(solver.solve(b), LuFactorization(a1).solve(b)),
            1e-9);
}

TEST(Woodbury, CancellingDeltaIsIdentity) {
  Rng rng(10);
  const DenseMatrix a0 = random_diag_dominant(8, rng);
  auto op = factor(a0);
  UpdateWorkspace solver(op);
  solver.set_updates({{2, 1.5}, {2, -1.5}});
  EXPECT_EQ(solver.update_rank(), 0u);
  const Vector b = random_vector(8, rng);
  EXPECT_LT(max_abs_diff(solver.solve(b), op->solve_base(b)), 1e-12);
}

TEST(Woodbury, WarmColumnsAreSharedOverflowIsCounted) {
  Rng rng(12);
  const DenseMatrix a0 = random_diag_dominant(12, rng);
  // Nodes 1 and 2 pre-warmed at construction; node 3 is an overflow column
  // computed on first use.
  const std::vector<std::size_t> warm = {1, 2};
  auto op = std::make_shared<const FactoredOperator>(a0, warm);
  EXPECT_EQ(op->warmed_columns(), 2u);
  EXPECT_EQ(op->overflow_columns(), 0u);
  UpdateWorkspace solver(op);
  solver.set_updates({{1, 1.0}, {2, 1.0}});
  EXPECT_EQ(op->overflow_columns(), 0u);
  solver.set_updates({{2, 2.0}, {3, 1.0}});
  EXPECT_EQ(op->overflow_columns(), 1u);  // node 3 added lazily
  // A second workspace reuses the same cached columns.
  UpdateWorkspace other(op);
  other.set_updates({{3, 0.5}});
  EXPECT_EQ(op->overflow_columns(), 1u);
}

TEST(Woodbury, RejectsOutOfRangeNode) {
  Rng rng(13);
  UpdateWorkspace solver(factor(random_diag_dominant(4, rng)));
  EXPECT_THROW(solver.set_updates({{4, 1.0}}), precondition_error);
  EXPECT_THROW(UpdateWorkspace{nullptr}, precondition_error);
  const DenseMatrix a0 = random_diag_dominant(4, rng);
  const std::vector<std::size_t> bad_warm = {4};
  EXPECT_THROW(FactoredOperator(a0, bad_warm), precondition_error);
}

// Regression test for the const-correctness bug the engine/workspace split
// fixes: two threads share one FactoredOperator (the engine half) through
// private workspaces, including a cold column that both threads demand
// concurrently. Built with -fsanitize=thread in the tier-1 TSan leg, any
// mutation behind the const facade is reported as a data race; results must
// also match the single-threaded answer bit for bit.
TEST(SharedOperator, ConcurrentWorkspacesAreRaceFreeAndBitExact) {
  Rng rng(77);
  const std::size_t n = 32;
  const DenseMatrix a0 = random_diag_dominant(n, rng);
  const std::vector<std::size_t> warm = {2, 5};
  auto op = std::make_shared<const FactoredOperator>(a0, warm);
  const Vector b = random_vector(n, rng);
  // Node 9 is deliberately NOT pre-warmed: both threads race to fault it
  // into the overflow cache.
  const std::vector<std::pair<std::size_t, double>> updates = {
      {2, 1.25}, {5, -0.3}, {9, 2.0}};

  UpdateWorkspace reference(op);
  reference.set_updates(updates);
  const Vector expect = reference.solve(b);

  constexpr int kThreads = 4;
  constexpr int kRepeats = 8;
  std::vector<Vector> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        UpdateWorkspace ws(op);
        Vector x;
        for (int r = 0; r < kRepeats; ++r) {
          ws.set_updates(updates);
          x = ws.solve(b);
        }
        results[static_cast<std::size_t>(i)] = std::move(x);
      });
    }
    for (auto& t : threads) t.join();
  }
  for (const Vector& x : results) {
    ASSERT_EQ(x.size(), expect.size());
    for (std::size_t k = 0; k < n; ++k) EXPECT_EQ(x[k], expect[k]);
  }
  EXPECT_EQ(op->overflow_columns(), 1u);
}

// ---------------------------------------------------- backend equivalence
/// A small RC-style network: a conductance path with a few cross links and
/// a ground term per node. Symmetric positive definite and genuinely
/// banded after RCM, like the chip thermal matrices.
SparseMatrix path_network(std::size_t n, Rng& rng) {
  SparseBuilder b(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i)
    b.add_conductance(i, i + 1, rng.uniform(0.5, 2.0));
  for (std::size_t i = 0; i + 4 < n; i += 3)
    b.add_conductance(i, i + 4, rng.uniform(0.1, 0.6));
  for (std::size_t i = 0; i < n; ++i)
    b.add_to_diagonal(i, rng.uniform(0.2, 1.0));
  return b.build();
}

TEST(BackendEquivalence, BandedOperatorMatchesDense) {
  Rng rng(55);
  const std::size_t n = 40;
  const SparseMatrix a0 = path_network(n, rng);
  const std::vector<std::size_t> warm = {3, 7, 21};
  const FactoredOperator dense(a0, warm, SolveBackend::kDense);
  auto banded = std::make_shared<const FactoredOperator>(
      a0, warm, SolveBackend::kBanded);
  ASSERT_FALSE(dense.banded());
  ASSERT_TRUE(banded->banded());
  EXPECT_GT(banded->bandwidth(), 0u);
  EXPECT_LT(banded->bandwidth(), n / 3);
  // The permutation is a valid reordering of all nodes.
  std::vector<bool> seen(n, false);
  for (const std::size_t p : banded->permutation()) {
    ASSERT_LT(p, n);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }

  const Vector b = random_vector(n, rng);
  EXPECT_LT(max_abs_diff(dense.solve_base(b), banded->solve_base(b)), 1e-9);
  for (const std::size_t node : warm)
    EXPECT_LT(max_abs_diff(dense.inverse_column(node),
                           banded->inverse_column(node)),
              1e-9);

  // Diagonal updates through both backends (Woodbury on top of either
  // base factorization) stay within the equivalence tolerance too.
  auto dense_op = std::make_shared<const FactoredOperator>(
      a0, warm, SolveBackend::kDense);
  UpdateWorkspace dense_ws(dense_op);
  UpdateWorkspace banded_ws(banded);
  const std::vector<std::pair<std::size_t, double>> updates = {
      {3, 1.5}, {7, -0.25}, {21, 4.0}};
  dense_ws.set_updates(updates);
  banded_ws.set_updates(updates);
  EXPECT_LT(max_abs_diff(dense_ws.solve(b), banded_ws.solve(b)), 1e-9);
}

TEST(BackendEquivalence, AutoFallsBackToDenseOnWideBands) {
  // A complete graph has bandwidth n-1 under every ordering; kAuto must
  // reject the band and keep the dense factorization.
  Rng rng(56);
  const std::size_t n = 12;
  SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      b.add_conductance(i, j, rng.uniform(0.1, 1.0));
  for (std::size_t i = 0; i < n; ++i) b.add_to_diagonal(i, 0.5);
  const SparseMatrix a0 = b.build();
  const FactoredOperator op(a0, {}, SolveBackend::kAuto);
  EXPECT_FALSE(op.banded());
  EXPECT_EQ(op.bandwidth(), 0u);
  // A narrow network under the same policy picks the band.
  const SparseMatrix narrow = path_network(24, rng);
  const FactoredOperator auto_op(narrow, {}, SolveBackend::kAuto);
  EXPECT_TRUE(auto_op.banded());
}

TEST(BackendEquivalence, AsymmetricSparseBaseUsesBandLu) {
  // A non-symmetric base cannot use band Cholesky; the pivoted band LU
  // must still produce the right answer.
  Rng rng(57);
  const std::size_t n = 30;
  SparseBuilder b(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b.add(i, i + 1, rng.uniform(-0.5, 0.5));
    b.add(i + 1, i, rng.uniform(-0.5, 0.5));
  }
  for (std::size_t i = 0; i < n; ++i)
    b.add(i, i, 3.0 + rng.uniform(0.0, 1.0));
  const SparseMatrix a0 = b.build();
  ASSERT_GT(a0.asymmetry(), 0.0);
  const FactoredOperator banded(a0, {}, SolveBackend::kBanded);
  ASSERT_TRUE(banded.banded());
  const Vector rhs = random_vector(n, rng);
  const Vector x = banded.solve_base(rhs);
  EXPECT_LT(residual_norm(a0.to_dense(), x, rhs), 1e-10);
}

// Banded twin of the dense concurrency test above: the permuted-band
// backend shares the same cold-column publication path, and the TSan leg
// must prove it race-free with the solve arithmetic bit-exact across
// workspaces.
TEST(SharedOperator, BandedBackendIsRaceFreeAndBitExact) {
  Rng rng(78);
  const std::size_t n = 36;
  const SparseMatrix a0 = path_network(n, rng);
  const std::vector<std::size_t> warm = {2, 5};
  auto op = std::make_shared<const FactoredOperator>(a0, warm,
                                                     SolveBackend::kBanded);
  ASSERT_TRUE(op->banded());
  const Vector b = random_vector(n, rng);
  const std::vector<std::pair<std::size_t, double>> updates = {
      {2, 1.25}, {5, -0.3}, {9, 2.0}};  // node 9 is a cold column

  UpdateWorkspace reference(op);
  reference.set_updates(updates);
  const Vector expect = reference.solve(b);

  constexpr int kThreads = 4;
  constexpr int kRepeats = 8;
  std::vector<Vector> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        UpdateWorkspace ws(op);
        Vector x;
        for (int r = 0; r < kRepeats; ++r) {
          ws.set_updates(updates);
          x = ws.solve(b);
        }
        results[static_cast<std::size_t>(i)] = std::move(x);
      });
    }
    for (auto& t : threads) t.join();
  }
  for (const Vector& x : results) {
    ASSERT_EQ(x.size(), expect.size());
    for (std::size_t k = 0; k < n; ++k) EXPECT_EQ(x[k], expect[k]);
  }
  EXPECT_EQ(op->overflow_columns(), 1u);
}

// -------------------------------------------------------------- systolic
class SystolicSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SystolicSizes, MatchesSoftwareMatvec) {
  Rng rng(GetParam() + 41);
  const std::size_t n = GetParam();
  BandMatrix a(n, std::min<std::size_t>(2, n - 1),
               std::min<std::size_t>(1, n - 1));
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      if (a.in_band(r, c)) a.at(r, c) = rng.uniform(-1, 1);
  const Vector x = random_vector(n, rng);
  Vector y_ref(n);
  a.matvec(x, y_ref);
  const auto run = systolic_band_matvec(a, x);
  EXPECT_LT(max_abs_diff(run.y, y_ref), 1e-14);
  EXPECT_EQ(run.pe_count, a.lower_bandwidth() + a.upper_bandwidth() + 1);
  // Last output drains within n + width cycles.
  EXPECT_LE(run.cycles, n + run.pe_count);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SystolicSizes,
                         ::testing::Values(2, 3, 18, 54, 200));

TEST(SystolicCost, PaperNumbers) {
  SystolicCostModel m;  // defaults: M=18, K=3, 8-bit
  EXPECT_EQ(m.multiplier_count(), 54u);
  // 16-bit reference scaled quadratically to 8-bit.
  EXPECT_NEAR(m.multiplier_area_mm2(), 0.057 * 0.25, 1e-12);
  EXPECT_NEAR(m.total_area_mm2(), 54 * 0.057 * 0.25, 1e-9);
  EXPECT_LT(m.area_overhead(), 0.017);  // paper: < 1.7%
  EXPECT_GT(m.power_w(), 0.0);
  EXPECT_LT(m.power_w() / 125.9, 0.017);
}

}  // namespace
}  // namespace tecfan::linalg
